//! The analytic cost model of the paper's case study (§2.2, Eqs. 2–3).

use gcnp_models::GnnModel;
use serde::{Deserialize, Serialize};

/// Per-model analytic costs on a graph with `n_nodes` and average degree `d`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    pub n_nodes: usize,
    /// Average degree of the (directed) adjacency.
    pub avg_degree: f64,
}

impl CostModel {
    /// Create a cost model for the given graph statistics.
    pub fn new(n_nodes: usize, avg_degree: f64) -> Self {
        Self {
            n_nodes,
            avg_degree,
        }
    }

    /// Full-inference MACs **per node** (Eq. 2):
    /// `Σ_i [ Σ_{k≥1} k·d·min(f_in, f_out) + Σ_k f_in·f_out ]`.
    ///
    /// The `min` captures the cheaper of aggregate-then-transform vs
    /// transform-then-aggregate for each graph branch; pruned branches read
    /// `keep.len()` input channels.
    pub fn full_macs_per_node(&self, model: &GnnModel) -> f64 {
        let mut macs = 0.0f64;
        for layer in &model.layers {
            for b in &layer.branches {
                let fin = b.in_dim() as f64;
                let fout = b.out_dim() as f64;
                if b.k >= 1 {
                    macs += b.k as f64 * self.avg_degree * fin.min(fout);
                }
                macs += fin * fout;
            }
        }
        macs
    }

    /// Full-inference kMACs per node — the paper's Table 3 metric.
    pub fn full_kmacs_per_node(&self, model: &GnnModel) -> f64 {
        self.full_macs_per_node(model) / 1e3
    }

    /// Full-inference memory in bytes (Eq. 2): per layer,
    /// `|V| · (f_in + Σ_k f_out_k)` activations (in-place point-wise ops, no
    /// stored intermediates) plus the weights.
    pub fn full_memory_bytes(&self, model: &GnnModel) -> usize {
        let mut floats = 0usize;
        for layer in &model.layers {
            let fin = layer.branches.iter().map(|b| b.in_dim()).max().unwrap_or(0);
            let fout: usize = layer.branches.iter().map(|b| b.out_dim()).sum();
            floats += self.n_nodes * (fin + fout);
        }
        (floats + model.n_weights()) * std::mem::size_of::<f32>()
    }

    /// Batched-inference MACs per **target** node for an `L`-layer model
    /// (Eq. 3): layer *i* touches `Σ_{l=0}^{L-i} d^l` supporting nodes per
    /// target, each paying that layer's per-node cost. `fanout` caps `d` (the
    /// paper limits hop-2 neighbors to 32).
    pub fn batched_macs_per_node(&self, model: &GnnModel, fanout_cap: Option<usize>) -> f64 {
        let d = match fanout_cap {
            Some(c) => self.avg_degree.min(c as f64),
            None => self.avg_degree,
        };
        let graph_layers = model.layers.iter().filter(|l| l.uses_graph()).count();
        let mut macs = 0.0f64;
        let mut depth_below = graph_layers; // hops of expansion below layer i
        for layer in &model.layers {
            if layer.uses_graph() {
                depth_below -= 1;
            }
            // supporting nodes per target at this layer
            let mut support = 0.0f64;
            let mut dl = 1.0f64;
            for _ in 0..=depth_below {
                support += dl;
                dl *= d;
            }
            let mut per_node = 0.0f64;
            for b in &layer.branches {
                let fin = b.in_dim() as f64;
                let fout = b.out_dim() as f64;
                if b.k >= 1 {
                    per_node += b.k as f64 * d * fin;
                }
                per_node += fin * fout;
            }
            macs += support * per_node;
        }
        macs
    }

    /// Batched kMACs per target node.
    pub fn batched_kmacs_per_node(&self, model: &GnnModel, fanout_cap: Option<usize>) -> f64 {
        self.batched_macs_per_node(model, fanout_cap) / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnp_models::zoo;

    #[test]
    fn full_macs_match_hand_count() {
        // SAGE: L1 (fin=10 -> 2x4), L2 (8 -> 2x4), cls (8 -> 3); d = 5.
        let model = zoo::graphsage(10, 8, 3, 1);
        let cm = CostModel::new(100, 5.0);
        // L1: k0: 10*4; k1: 5*min(10,4) + 10*4 ; L2: k0: 8*4; k1: 5*4+8*4; cls: 8*3
        let expect = (10 * 4) as f64
            + (5 * 4 + 10 * 4) as f64
            + (8 * 4) as f64
            + (5 * 4 + 8 * 4) as f64
            + (8 * 3) as f64;
        assert!((cm.full_macs_per_node(&model) - expect).abs() < 1e-9);
    }

    #[test]
    fn pruning_reduces_all_costs() {
        let full = zoo::graphsage(100, 64, 10, 2);
        let mut pruned = full.clone();
        // Simulate an η=0.5 full-inference pruning by halving interface dims.
        for b in &mut pruned.layers[0].branches {
            b.weight = b.weight.select_cols(&(0..16).collect::<Vec<_>>());
        }
        for b in &mut pruned.layers[1].branches {
            b.weight = b
                .weight
                .select_rows(&(0..32).collect::<Vec<_>>())
                .select_cols(&(0..16).collect::<Vec<_>>());
        }
        pruned.layers[2].branches[0].weight = pruned.layers[2].branches[0]
            .weight
            .select_rows(&(0..32).collect::<Vec<_>>());
        if let Some(bias) = &mut pruned.layers[0].bias {
            *bias = bias.select_cols(&(0..32).collect::<Vec<_>>());
        }
        if let Some(bias) = &mut pruned.layers[1].bias {
            *bias = bias.select_cols(&(0..32).collect::<Vec<_>>());
        }
        let cm = CostModel::new(1000, 10.0);
        assert!(cm.full_macs_per_node(&pruned) < 0.6 * cm.full_macs_per_node(&full));
        assert!(cm.full_memory_bytes(&pruned) < cm.full_memory_bytes(&full));
        assert!(
            cm.batched_macs_per_node(&pruned, Some(32)) < cm.batched_macs_per_node(&full, Some(32))
        );
    }

    #[test]
    fn batched_cost_dominated_by_first_layer() {
        let model = zoo::graphsage(100, 64, 10, 3);
        let cm = CostModel::new(1000, 10.0);
        let batched = cm.batched_macs_per_node(&model, None);
        let full = cm.full_macs_per_node(&model);
        // Eq. 3: batched ≈ d^(L-1) · C_full(layer 1) >> C_full per node.
        assert!(batched > 5.0 * full, "batched {batched} vs full {full}");
    }

    #[test]
    fn fanout_cap_bounds_batched_cost() {
        let model = zoo::graphsage(100, 64, 10, 4);
        let cm = CostModel::new(1000, 50.0);
        let capped = cm.batched_macs_per_node(&model, Some(10));
        let uncapped = cm.batched_macs_per_node(&model, None);
        assert!(capped < uncapped);
    }

    #[test]
    fn memory_scales_with_nodes() {
        let model = zoo::graphsage(100, 64, 10, 5);
        let small = CostModel::new(1000, 10.0).full_memory_bytes(&model);
        let large = CostModel::new(10_000, 10.0).full_memory_bytes(&model);
        assert!(large > 5 * small);
    }

    #[test]
    fn mlp_has_no_aggregation_cost() {
        let model = zoo::mlp(100, 64, 10, 6);
        let a = CostModel::new(1000, 5.0).full_macs_per_node(&model);
        let b = CostModel::new(1000, 50.0).full_macs_per_node(&model);
        assert_eq!(a, b, "degree must not matter for an MLP");
    }
}
