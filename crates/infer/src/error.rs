//! Typed errors for the serving path.
//!
//! The paper's deployment scenario (Table 1: live recommendation and spam
//! detection) cannot afford fail-stop semantics: a malformed request or a
//! stale store row must degrade into a *counted* failure, not a process
//! abort. This module is the error vocabulary shared by
//! [`crate::BatchedEngine::try_infer`], [`crate::serving::simulate`] and
//! [`crate::serving::serve_multi`]: recoverable conditions surface as
//! [`ServingError`] values; `panic!` is reserved for programmer errors
//! (constructor misuse) and injected faults (see [`crate::faults`]).

use std::fmt;

/// Result alias used across the serving layer.
pub type ServingResult<T> = Result<T, ServingError>;

/// A recoverable serving-path failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// The request pool is empty — there is nothing to sample requests from.
    EmptyPool,
    /// A multi-worker call received zero engine replicas.
    NoEngines,
    /// A [`crate::ServingConfig`] field is out of range; the message names it.
    InvalidConfig(String),
    /// A request targets a node id outside the graph.
    TargetOutOfRange { node: usize, n_nodes: usize },
    /// A stored hidden-feature row has the wrong width for its level —
    /// the store was populated for a different model.
    StoreWidthMismatch {
        level: usize,
        expected: usize,
        got: usize,
    },
    /// A row the support builder saw in the store vanished before it was
    /// read (e.g. a concurrent [`crate::FeatureStore::evict_older_than`]).
    /// The batch can be retried; the rebuilt support will expand the node.
    MissingStoredRow { level: usize, node: usize },
    /// Malformed fault-injection spec (CLI `--faults`); the message explains.
    InvalidFaultSpec(String),
    /// A runtime invariant tripped: a store write addressed out-of-bounds
    /// slots, or (under `strict-invariants`) a shape contract or finiteness
    /// check failed at the engine boundary. `check` is the stable check
    /// identifier (e.g. `"engine.features.finite"`).
    InvariantViolation { check: &'static str, detail: String },
}

impl From<gcnp_tensor::CheckError> for ServingError {
    fn from(e: gcnp_tensor::CheckError) -> Self {
        ServingError::InvariantViolation {
            check: e.check,
            detail: e.detail,
        }
    }
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::EmptyPool => write!(f, "empty request pool"),
            ServingError::NoEngines => write!(f, "need at least one engine replica"),
            ServingError::InvalidConfig(msg) => write!(f, "invalid serving config: {msg}"),
            ServingError::TargetOutOfRange { node, n_nodes } => {
                write!(f, "target node {node} out of range (graph has {n_nodes} nodes)")
            }
            ServingError::StoreWidthMismatch {
                level,
                expected,
                got,
            } => write!(
                f,
                "stored feature width mismatch at level {level}: expected {expected}, got {got}"
            ),
            ServingError::MissingStoredRow { level, node } => write!(
                f,
                "stored row for node {node} at level {level} vanished mid-batch (concurrent eviction?)"
            ),
            ServingError::InvalidFaultSpec(msg) => write!(f, "invalid fault spec: {msg}"),
            ServingError::InvariantViolation { check, detail } => {
                write!(f, "invariant `{check}` violated: {detail}")
            }
        }
    }
}

impl std::error::Error for ServingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServingError::StoreWidthMismatch {
            level: 2,
            expected: 16,
            got: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("level 2") && msg.contains("16") && msg.contains('8'));
        assert!(ServingError::EmptyPool.to_string().contains("empty"));
        assert!(ServingError::TargetOutOfRange {
            node: 9,
            n_nodes: 4
        }
        .to_string()
        .contains("9"));
    }
}
