//! Batched inference with supporting-node expansion, hop fan-out caps, and
//! the hidden-feature store (§2.2.2, §3.3.2).
//!
//! Unlike full inference, only the features actually reachable from the
//! batch targets are gathered and transformed. Aggregation is a uniform mean
//! over the (possibly capped) neighbor sample, matching GraphSAGE's `D⁻¹A`
//! semantics when uncapped.
//!
//! # Two-stage decomposition
//!
//! Every batch is served in two stages that share no mutable state:
//!
//! * **prepare** (front end): fault draw, target validation, neighborhood
//!   expansion ([`BatchSupport`]), the level-0 feature gather, and all store
//!   probes, staged into owned buffers ([`PreparedBatch`]);
//! * **execute** (back end): relabel-table maintenance, SpMM + GEMM +
//!   combine, store write-backs, and target-logit extraction.
//!
//! [`BatchedEngine::try_infer`] runs them back-to-back (the sequential
//! path). The pipelined executor in [`crate::pipeline`] runs the front
//! stage of batch N+1 concurrently with the back stage of batch N on
//! separate threads — which is why the split routes every front-stage
//! buffer through the owned, `Send` [`PreparedBatch`], and why the back end
//! hands spent front-pool buffers back through an explicit `spent` list
//! instead of recycling into a shared pool. Staging the store probes in the
//! front stage also means a poisoned store row surfaces as a typed error
//! *before* any GEMM or write-back runs (fail before side effects).

use gcnp_models::{Branch, CombineMode, GnnModel, PackedModel, QuantPackedModel};
use gcnp_sparse::{BatchSupport, CsrMatrix};
use gcnp_tensor::{parallel_row_chunks, qgemm_packed_into, Matrix, ScratchPool};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{ServingError, ServingResult};
use crate::faults::{Fault, FaultInjector};
use crate::metrics::EngineMetrics;
use crate::shard::ShardedStore;
use crate::store::FeatureStore;

/// Sentinel in the dense relabel table: node not present at this level.
const ABSENT: u32 = u32::MAX;

/// Optimistic throughput assumed by [`BatchedEngine::cold_compute_estimate`]
/// before any real compute observation exists. Biased high (fast machine)
/// on purpose: a too-small seed estimate only delays EWMA convergence by a
/// batch, while a too-large one spuriously sheds a cold fleet's first batch.
const COLD_MACS_PER_SEC: f64 = 2e9;

/// Sampled zero fraction of a gathered operand above which the dense branch
/// GEMM is routed to the column-blocked CSR SpMM instead. ReLU-sparsified
/// hidden layers routinely exceed this; raw feature gathers rarely do. At
/// 87.5% zeros the sparse kernel touches ⅛ of the multiply work, which
/// comfortably covers the compression cost.
const SPARSE_DISPATCH_ZERO_FRAC: f32 = 0.875;

/// Minimum `rows · in · out` multiply-adds before the density probe runs at
/// all: below this even a free sparse kernel cannot repay the probe and
/// compression overhead, so small products always take the dense pack.
const SPARSE_DISPATCH_MIN_MACS: usize = 1 << 15;

/// Elements the density probe samples per gathered operand (fixed-stride,
/// sequential — deterministic and thread-count invariant).
const DENSITY_PROBE_SAMPLES: usize = 1024;

/// Numeric precision an engine runs its branch transforms in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// f32 blocked GEMM with runtime sparsity dispatch (dense ↔ CSR SpMM).
    F32,
    /// Blocked int8 GEMM over per-column-quantized packed weights — the
    /// degradation ladder's cheapest rung.
    Int8,
}

/// The engine's weight-pack cache in its chosen precision. Both variants
/// fold channel-pruning masks into the pack step, so pruned channels are
/// never packed or multiplied.
pub(crate) enum WeightPacks<'m> {
    F32(PackedModel<'m>),
    Int8(QuantPackedModel<'m>),
}

impl WeightPacks<'_> {
    fn precision(&self) -> Precision {
        match self {
            WeightPacks::F32(_) => Precision::F32,
            WeightPacks::Int8(_) => Precision::Int8,
        }
    }

    /// Bytes of weight data a batch streams through (the per-batch memory
    /// metric's weight term): 4 bytes per f32 weight, 1 per int8.
    fn weight_bytes(&self, model: &GnnModel) -> usize {
        match self {
            WeightPacks::F32(_) => model.n_weights() * 4,
            WeightPacks::Int8(_) => model.n_weights(),
        }
    }
}

/// The engine's store binding: none, one [`FeatureStore`], or one shard of a
/// [`ShardedStore`] (the engine serves targets owned by `shard`; reads and
/// write-backs route to each row's owner, and cross-shard fetches are
/// accounted through the router counters).
///
/// All methods treat `None` as an always-empty, write-discarding store, so
/// the hot paths need no `if let` at every site — a `put` against `None` is
/// a silent no-op `Ok(())`, exactly matching the previous
/// `Option<&FeatureStore>` semantics under store bypass.
#[derive(Clone, Copy)]
pub(crate) enum StoreView<'a> {
    None,
    Single(&'a FeatureStore),
    Shard {
        store: &'a ShardedStore,
        shard: usize,
    },
}

impl<'a> StoreView<'a> {
    fn from_option(store: Option<&'a FeatureStore>) -> Self {
        match store {
            None => StoreView::None,
            Some(s) => StoreView::Single(s),
        }
    }

    /// True when some store backs this view.
    fn active(&self) -> bool {
        !matches!(self, StoreView::None)
    }

    fn has(&self, level: usize, node: usize) -> bool {
        match self {
            StoreView::None => false,
            StoreView::Single(s) => s.has(level, node),
            StoreView::Shard { store, .. } => store.has(level, node),
        }
    }

    fn with_row<R>(&self, level: usize, node: usize, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        match self {
            StoreView::None => None,
            StoreView::Single(s) => s.with_row(level, node, f),
            StoreView::Shard { store, .. } => store.with_row(level, node, f),
        }
    }

    fn put(&self, level: usize, node: usize, row: &[f32]) -> ServingResult<()> {
        match self {
            StoreView::None => Ok(()),
            StoreView::Single(s) => s.put(level, node, row),
            StoreView::Shard { store, .. } => store.put(level, node, row),
        }
    }

    fn tick(&self) {
        match self {
            StoreView::None => {}
            StoreView::Single(s) => s.tick(),
            StoreView::Shard { store, .. } => store.tick(),
        }
    }

    fn inject_bit_flip(&self, seed: u64) -> Option<(usize, usize)> {
        match self {
            StoreView::None => None,
            StoreView::Single(s) => s.inject_bit_flip(seed),
            StoreView::Shard { store, .. } => store.inject_bit_flip(seed),
        }
    }

    /// Account one per-level batched fetch of stored rows against the shard
    /// router's counters (no-op for unsharded views: a single store has no
    /// remote rows).
    fn note_remote(&self, nodes: &[usize], width: usize) {
        if let StoreView::Shard { store, shard } = self {
            store.note_remote_fetch(*shard, nodes, width);
        }
    }
}

/// What the engine writes back to the store after each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorePolicy {
    /// Never write (read-only store, or no store at all).
    None,
    /// Store the hidden features of the batch's **root** (target) nodes —
    /// the paper's recommended balance point (§3.3.2).
    Roots,
    /// Store every hidden feature computed in the batch (maximum reuse,
    /// maximum write traffic).
    AllVisited,
}

/// Per-batch instrumentation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchResult {
    /// Logits for the deduplicated targets, in [`BatchResult::targets`] order.
    pub logits: Matrix,
    pub targets: Vec<usize>,
    /// Wall-clock seconds for this batch (gather + compute + store I/O; in
    /// the pipelined executor this also spans the inter-stage queue wait).
    pub seconds: f64,
    /// MACs actually executed.
    pub macs: u64,
    /// Bytes of features touched (gathered inputs, intermediates, store
    /// reads) plus weights — the paper's per-batch memory metric.
    pub mem_bytes: usize,
    /// Distinct nodes whose raw attributes were gathered.
    pub n_supporting: usize,
    /// Store reads that avoided expansion.
    pub store_hits: usize,
}

/// Batched-inference engine.
pub struct BatchedEngine<'a> {
    model: &'a GnnModel,
    /// Weight-pack cache: every branch weight packed once at construction
    /// (f32 or int8 per the engine's [`Precision`]), so per-batch GEMMs skip
    /// the operand-pack step entirely.
    packed: WeightPacks<'a>,
    /// Raw (unnormalized) adjacency; the engine applies mean aggregation.
    adj: &'a CsrMatrix,
    features: &'a Matrix,
    /// Per-hop fan-out caps (`[None, Some(32)]` = the paper's setting).
    pub caps: Vec<Option<usize>>,
    store: StoreView<'a>,
    pub policy: StorePolicy,
    seed: u64,
    batch_counter: u64,
    /// Front-stage matrix free list: level-0 gathers and staged store reads
    /// are drawn from here; the back end returns them via its `spent` list
    /// (double-buffered circulation under the pipelined executor).
    front_pool: ScratchPool,
    /// Back-stage scratch (relabel table, touched list, matrix pool).
    back: BackScratch,
    /// True while a batch is in flight on the back stage. A batch that
    /// panicked or errored out leaves this set, and the next execute
    /// rebuilds the relabel scratch from zero — so a recovered engine never
    /// serves from corrupt scratch.
    dirty: bool,
    /// Optional fault-injection hook (chaos testing); `None` costs one
    /// branch per batch.
    faults: Option<Arc<FaultInjector>>,
    /// Optional per-stage instrumentation (see [`crate::metrics`]); `None`
    /// (or an `obs-off` build) skips all clock reads.
    metrics: Option<Arc<EngineMetrics>>,
    /// EWMA-observation skew factor latched by the most recent execute
    /// (`Fault::ClockSkew` perturbs only the compute-estimate observation,
    /// never latency accounting); 1.0 otherwise. The sequential serving
    /// worker reads it through [`BatchedEngine::last_est_skew`], the
    /// pipelined back stage through its [`BackStage::skew`] borrow.
    last_skew: f64,
}

/// Reusable back-stage scratch, owned by the engine and mutably borrowed
/// (never moved) for the duration of each execute.
#[derive(Default)]
pub(crate) struct BackScratch {
    /// Dense node-id → level-row relabel table ([`ABSENT`] = not present),
    /// sized to the graph and reused across levels and batches. Replaces a
    /// per-level `HashMap<usize, usize>` that was rebuilt (and re-hashed per
    /// edge) on every batch.
    relabel: Vec<u32>,
    /// Node ids currently set in `relabel`, so resetting between levels is
    /// O(nodes touched), not O(graph).
    touched: Vec<usize>,
    /// Matrix free list: level tables, gathered operands, and branch GEMM
    /// outputs are drawn from (and returned to) this pool instead of hitting
    /// the allocator once per intermediate per batch.
    pool: ScratchPool,
}

/// Stages charged by the engine's [`StageClock`].
#[derive(Clone, Copy)]
enum Stage {
    Expand,
    Relabel,
    StoreProbe,
    Spmm,
    Gemm,
    WriteBack,
}

/// Contiguous-lap stage stopwatch: each `lap(stage)` charges the time since
/// the previous lap to `stage`, so the per-stage sums cover the
/// instrumented span with no gaps and no double counting. Under the
/// pipelined executor the clock travels inside [`PreparedBatch`] and is
/// [`StageClock::resume`]d when the back stage picks the batch up, so the
/// recorded per-stage times are **busy** time — the inter-stage queue wait
/// is never charged to any stage.
pub(crate) struct StageClock {
    last: Instant,
    expand: f64,
    relabel: f64,
    store_probe: f64,
    spmm: f64,
    gemm: f64,
    write_back: f64,
}

impl StageClock {
    fn start(at: Instant) -> Self {
        Self {
            last: at,
            expand: 0.0,
            relabel: 0.0,
            store_probe: 0.0,
            spmm: 0.0,
            gemm: 0.0,
            write_back: 0.0,
        }
    }

    fn lap(&mut self, stage: Stage) {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        let slot = match stage {
            Stage::Expand => &mut self.expand,
            Stage::Relabel => &mut self.relabel,
            Stage::StoreProbe => &mut self.store_probe,
            Stage::Spmm => &mut self.spmm,
            Stage::Gemm => &mut self.gemm,
            Stage::WriteBack => &mut self.write_back,
        };
        *slot += dt;
    }

    /// Restart the lap baseline without charging the elapsed gap to any
    /// stage — called by the back stage after the batch crossed the
    /// inter-stage queue.
    fn resume(&mut self) {
        self.last = Instant::now();
    }

    fn record(&self, m: &EngineMetrics) {
        m.expand.observe(self.expand);
        m.relabel.observe(self.relabel);
        m.store_probe.observe(self.store_probe);
        m.spmm.observe(self.spmm);
        m.gemm.observe(self.gemm);
        m.write_back.observe(self.write_back);
    }
}

/// Lap helper for the optional clock (one branch when uninstrumented).
#[inline]
fn lap(clock: &mut Option<StageClock>, stage: Stage) {
    if let Some(c) = clock.as_mut() {
        c.lap(stage);
    }
}

/// A batch after its front-end stage: everything the back end needs, fully
/// owned and `Send`, so it can cross the inter-stage queue of the pipelined
/// executor (see [`crate::pipeline`]).
pub(crate) struct PreparedBatch {
    pub(crate) support: BatchSupport,
    /// Level-0 raw attributes of the supporting nodes (a front-pool buffer;
    /// the back end retires it through its `spent` list).
    level0: Matrix,
    /// Staged store reads per level: `staged[li - 1]` holds the rows of
    /// `support.layers[li - 1].stored` in order, `None` when that level has
    /// no stored rows.
    staged: Vec<Option<Matrix>>,
    /// A store-miss storm was drawn: the back end must skip write-backs and
    /// the store clock tick, exactly as if the store were absent.
    bypass_store: bool,
    /// The fault drawn for this attempt. Fault draws key on the batch
    /// attempt (one draw in prepare per attempt, regardless of which stage
    /// the effect lands in): `Panic` already fired in prepare, `StoreMiss`
    /// is latched into `bypass_store`, and `Straggle` is applied by the
    /// back end at the end of execute.
    fault: Fault,
    /// Feature bytes touched so far (weights + level-0 gather + store reads).
    mem_bytes: usize,
    store_hits: usize,
    /// Batch admission instant: [`BatchResult::seconds`] spans prepare, any
    /// inter-stage queue wait, and execute.
    t0: Instant,
    /// Stage stopwatch carried across the queue (see [`StageClock`]).
    clock: Option<StageClock>,
}

impl PreparedBatch {
    /// The fault drawn for this attempt. The pipelined front routes
    /// `QueueWedge` through the quiet (no-wakeup) stage push based on this.
    pub(crate) fn fault(&self) -> Fault {
        self.fault
    }

    /// Return this batch's front-pool buffers to `pool` — the abandon path
    /// when a supervisor steal voids the attempt after prepare finished.
    pub(crate) fn recycle_into(self, pool: &mut ScratchPool) {
        pool.recycle(self.level0);
        for rows in self.staged.into_iter().flatten() {
            pool.recycle(rows);
        }
    }
}

/// Copyable view of the engine's shared, read-only state, handed to both
/// pipeline stages by [`BatchedEngine::split`].
#[derive(Clone, Copy)]
pub(crate) struct EngineCore<'e, 'a> {
    model: &'a GnnModel,
    packed: &'e WeightPacks<'a>,
    adj: &'a CsrMatrix,
    features: &'a Matrix,
    caps: &'e [Option<usize>],
    store: StoreView<'a>,
    policy: StorePolicy,
    seed: u64,
    faults: Option<&'e Arc<FaultInjector>>,
    metrics: Option<&'e Arc<EngineMetrics>>,
}

/// Mutable state owned by the front (prepare) stage.
pub(crate) struct FrontStage<'e> {
    counter: &'e mut u64,
    pub(crate) pool: &'e mut ScratchPool,
}

/// Mutable state owned by the back (execute) stage.
pub(crate) struct BackStage<'e> {
    scratch: &'e mut BackScratch,
    dirty: &'e mut bool,
    /// Skew-factor latch written by every execute (see
    /// [`BatchedEngine::last_est_skew`]).
    pub(crate) skew: &'e mut f64,
}

impl<'a> BatchedEngine<'a> {
    /// Create an f32 engine. `store = None` disables the hidden-feature
    /// reuse. See [`BatchedEngine::new_with_precision`] for the int8 tier.
    pub fn new(
        model: &'a GnnModel,
        adj: &'a CsrMatrix,
        features: &'a Matrix,
        caps: Vec<Option<usize>>,
        store: Option<&'a FeatureStore>,
        policy: StorePolicy,
        seed: u64,
    ) -> Self {
        Self::new_with_precision(
            model,
            adj,
            features,
            caps,
            store,
            policy,
            seed,
            Precision::F32,
        )
    }

    /// Create an engine pinned to one shard of a [`ShardedStore`]: reads
    /// and write-backs route to each row's owner shard, and per-level
    /// cross-shard fetches are accounted on the `shard.remote.*` counters.
    /// Because every shard's rows are reachable through the router, the
    /// logits are bitwise-identical to an unsharded engine over the union
    /// store (pinned in `tests/shard_equivalence.rs`).
    #[allow(clippy::too_many_arguments)]
    pub fn new_sharded(
        model: &'a GnnModel,
        adj: &'a CsrMatrix,
        features: &'a Matrix,
        caps: Vec<Option<usize>>,
        store: &'a ShardedStore,
        shard: usize,
        policy: StorePolicy,
        seed: u64,
    ) -> Self {
        // audit: allow(no-fail-stop) — constructor misuse is a programmer error; engines are built once at startup, not per request
        assert!(
            shard < store.n_shards(),
            "BatchedEngine::new_sharded: shard {shard} of {}",
            store.n_shards()
        );
        Self::with_view(
            model,
            adj,
            features,
            caps,
            StoreView::Shard { store, shard },
            policy,
            seed,
            Precision::F32,
        )
    }

    /// Create an engine whose branch transforms run in the given
    /// [`Precision`]: `F32` packs the weights for the blocked f32 GEMM (with
    /// runtime sparsity dispatch), `Int8` quantizes them per column and
    /// packs for the blocked int8 kernel — the degradation ladder's
    /// `quantized` rung.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_precision(
        model: &'a GnnModel,
        adj: &'a CsrMatrix,
        features: &'a Matrix,
        caps: Vec<Option<usize>>,
        store: Option<&'a FeatureStore>,
        policy: StorePolicy,
        seed: u64,
        precision: Precision,
    ) -> Self {
        Self::with_view(
            model,
            adj,
            features,
            caps,
            StoreView::from_option(store),
            policy,
            seed,
            precision,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_view(
        model: &'a GnnModel,
        adj: &'a CsrMatrix,
        features: &'a Matrix,
        caps: Vec<Option<usize>>,
        store: StoreView<'a>,
        policy: StorePolicy,
        seed: u64,
        precision: Precision,
    ) -> Self {
        for layer in &model.layers {
            // audit: allow(no-fail-stop) — constructor misuse is a programmer error; engines are built once at startup, not per request
            assert!(
                layer.branches.iter().all(|b| b.k <= 1),
                "BatchedEngine: only k ∈ {{0,1}} branches supported (GraphSAGE-style)"
            );
        }
        // audit: allow(no-fail-stop) — constructor misuse is a programmer error (see above)
        assert!(!model.jk, "BatchedEngine: JK models not supported");
        Self {
            model,
            packed: match precision {
                Precision::F32 => WeightPacks::F32(PackedModel::new(model)),
                Precision::Int8 => WeightPacks::Int8(QuantPackedModel::new(model)),
            },
            adj,
            features,
            caps,
            store,
            policy,
            seed,
            batch_counter: 0,
            front_pool: ScratchPool::new(),
            back: BackScratch {
                relabel: vec![ABSENT; adj.n_rows()],
                touched: Vec::new(),
                pool: ScratchPool::new(),
            },
            dirty: false,
            faults: None,
            metrics: None,
            last_skew: 1.0,
        }
    }

    /// Attach a fault injector (see [`crate::faults`]). Fleet replicas
    /// should share one `Arc` so the attempt counter is global.
    pub fn set_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Attach a metrics bundle (see [`crate::metrics`]). Fleet replicas
    /// should build their bundles from one shared
    /// [`gcnp_obs::MetricsRegistry`] so per-stage timings accumulate across
    /// workers. A `None`-metrics engine (the default) reads no clocks.
    pub fn set_metrics(&mut self, metrics: Arc<EngineMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The attached metrics bundle, if any.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// The numeric precision the branch transforms run in.
    pub fn precision(&self) -> Precision {
        self.packed.precision()
    }

    /// Skew factor the most recent execute latched for the EWMA
    /// compute-estimate observation (1.0 unless that batch drew
    /// [`Fault::ClockSkew`]).
    pub(crate) fn last_est_skew(&self) -> f64 {
        self.last_skew
    }

    /// Analytic compute-seconds estimate for a cold batch of `batch`
    /// targets, from the cost model (Eqs. 2–3) at an optimistic throughput.
    /// Seeds the serving layer's EWMA virtual clock and deadline projection
    /// before the first real observation arrives — deliberately small so a
    /// cold fleet admits rather than sheds, but strictly positive so the
    /// dispatcher's virtual clock advances from the first batch.
    pub fn cold_compute_estimate(&self, batch: usize) -> f64 {
        let n = self.adj.n_rows().max(1);
        let avg_degree = self.adj.nnz() as f64 / n as f64;
        let cap = self.caps.iter().flatten().copied().min();
        let macs =
            crate::costmodel::CostModel::new(n, avg_degree).batched_macs_per_node(self.model, cap);
        (macs * batch as f64 / COLD_MACS_PER_SEC).max(f64::MIN_POSITIVE)
    }

    /// Split the engine into the shared read-only core plus the disjoint
    /// mutable state of each pipeline stage. The field-level borrows let
    /// the pipelined executor run `prepare` (front) and `execute` (back) on
    /// different threads against one engine.
    pub(crate) fn split(&mut self) -> (EngineCore<'_, 'a>, FrontStage<'_>, BackStage<'_>) {
        let core = EngineCore {
            model: self.model,
            packed: &self.packed,
            adj: self.adj,
            features: self.features,
            caps: &self.caps,
            store: self.store,
            policy: self.policy,
            seed: self.seed,
            faults: self.faults.as_ref(),
            metrics: self.metrics.as_ref(),
        };
        let front = FrontStage {
            counter: &mut self.batch_counter,
            pool: &mut self.front_pool,
        };
        let back = BackStage {
            scratch: &mut self.back,
            dirty: &mut self.dirty,
            skew: &mut self.last_skew,
        };
        (core, front, back)
    }

    /// Serve one batch of target nodes, panicking on any serving error —
    /// the fail-stop wrapper kept for offline/batch callers. Real-time
    /// serving paths use [`BatchedEngine::try_infer`].
    pub fn infer(&mut self, targets: &[usize]) -> BatchResult {
        self.try_infer(targets)
            // audit: allow(no-fail-stop) — documented fail-stop wrapper for offline callers; serving paths use try_infer
            .unwrap_or_else(|e| panic!("BatchedEngine::infer: {e}"))
    }

    /// Serve one batch of target nodes, surfacing recoverable failures
    /// (bad targets, stale/mismatched store rows) as [`ServingError`]s
    /// instead of panicking. After an error *or* a caught panic the engine
    /// stays usable: the next call rebuilds its scratch state.
    ///
    /// This is the sequential path: prepare and execute run back-to-back on
    /// the caller's thread, so outputs are identical to the pipelined
    /// executor's by construction (both run exactly this code).
    pub fn try_infer(&mut self, targets: &[usize]) -> ServingResult<BatchResult> {
        let (core, mut front, mut back) = self.split();
        let prep = core.prepare(targets, &mut front)?;
        let mut spent = Vec::new();
        let res = core.execute(prep, &mut back, &mut spent);
        // Front-originated buffers circulate back to the front pool (the
        // pipelined executor routes this return trip through a rail between
        // the stage threads instead).
        for m in spent {
            front.pool.recycle(m);
        }
        res
    }
}

impl<'e, 'a> EngineCore<'e, 'a> {
    /// True when batches write to a store: the pipelined executor must then
    /// serialize batch N+1's store probes (prepare) behind batch N's
    /// write-backs (execute) to keep outputs identical to sequential.
    pub(crate) fn needs_store_barrier(&self) -> bool {
        self.store.active() && !matches!(self.policy, StorePolicy::None)
    }

    /// Front-end stage: draw the attempt's fault, validate targets, expand
    /// the supporting-node structure, gather level-0 attributes, and stage
    /// every store read into owned buffers.
    pub(crate) fn prepare(
        &self,
        targets: &[usize],
        front: &mut FrontStage<'_>,
    ) -> ServingResult<PreparedBatch> {
        let t0 = Instant::now();
        let fault = match self.faults {
            None => Fault::None,
            Some(inj) => inj.next_fault(),
        };
        if matches!(fault, Fault::Panic) {
            // audit: allow(no-fail-stop) — chaos-injected worker crash; serve_multi recovers it via catch_unwind
            panic!("gcnp-faults: injected worker panic");
        }
        if let Fault::StageStall { seconds } = fault {
            // A wedged front stage: go silent mid-prepare (capped like
            // Straggle so a chaos schedule cannot hang a test job). The
            // supervisor's watchdog must detect this and steal the batch.
            std::thread::sleep(std::time::Duration::from_secs_f64(seconds.clamp(0.0, 1.0)));
        }
        let n_nodes = self.adj.n_rows();
        for &v in targets {
            if v >= n_nodes {
                return Err(ServingError::TargetOutOfRange { node: v, n_nodes });
            }
        }
        // Enforced under `strict-invariants`, compiled out otherwise: a
        // feature matrix sized for a different graph must surface as a typed
        // error here, not as an out-of-bounds panic inside a gather kernel.
        gcnp_tensor::shape_contract!(
            "engine.features.rows",
            self.features.rows() == n_nodes,
            "feature matrix has {} rows but the graph has {n_nodes} nodes",
            self.features.rows()
        );
        // A store-miss storm serves the batch as if the store were cold:
        // every probe misses, reads and write-backs are skipped.
        let bypass_store = matches!(fault, Fault::StoreMiss);
        let store = if bypass_store {
            StoreView::None
        } else {
            self.store
        };
        *front.counter += 1;
        let batch_seed = self.seed ^ *front.counter;
        if matches!(fault, Fault::RowFlip) {
            // Corrupt one resident store row (deterministic in the batch
            // seed). `has()` still reports the row, so this batch stages a
            // read of it; the checksum inside `with_row` then quarantines
            // the row and the attempt fails typed-retryable — the retry
            // re-gathers from level 0 and serves uncorrupted data.
            self.store.inject_bit_flip(batch_seed);
        }
        // Stage clock: only when a bundle is attached AND `obs` is compiled
        // in (the `enabled()` check const-folds the whole thing away in
        // obs-off builds, clock reads included).
        let mut clock = self
            .metrics
            .filter(|_| gcnp_obs::enabled())
            .map(|_| StageClock::start(Instant::now()));
        let graph_flags: Vec<bool> = self.model.layers.iter().map(|l| l.uses_graph()).collect();
        let n_layers = graph_flags.len();
        let support = BatchSupport::build(
            self.adj,
            targets,
            &graph_flags,
            self.caps,
            batch_seed,
            |level, node| store.has(level, node),
        );
        lap(&mut clock, Stage::Expand);

        let mut mem_bytes: usize = self.packed.weight_bytes(self.model);
        let mut store_hits = 0usize;

        // Level 0: raw attributes of the input nodes, gathered into a pooled
        // buffer instead of a fresh allocation per batch.
        let mut level0 = front
            .pool
            .take_matrix(support.input_nodes.len(), self.features.cols());
        for (i, &v) in support.input_nodes.iter().enumerate() {
            level0.row_mut(i).copy_from_slice(self.features.row(v));
        }
        // Trap NaN/Inf feature rows at the engine boundary (before any
        // kernel consumes them) so a poisoned row degrades into a typed,
        // retryable error. No-op without `strict-invariants`.
        gcnp_tensor::check::assert_finite(
            "engine.features.finite",
            "gathered level-0 feature rows",
            level0.as_slice(),
        )?;
        mem_bytes += level0.nbytes();
        lap(&mut clock, Stage::Relabel);

        // Stage every store read. The level-li table is `out_dim()` wide,
        // so a stored row of any other width is a poisoned entry and
        // surfaces here as a typed error — before any GEMM or write-back
        // side effect of this batch.
        let mut staged: Vec<Option<Matrix>> = Vec::with_capacity(n_layers);
        for li in 1..=n_layers {
            let ls = &support.layers[li - 1]; // audit: allow(no-fail-stop) — li ranges over 1..=n_layers and support has one entry per layer
            if ls.stored.is_empty() {
                staged.push(None);
                continue;
            }
            let width = self.model.layers[li - 1].out_dim(); // audit: allow(no-fail-stop) — same loop bound
            let mut rows = front.pool.take_matrix(ls.stored.len(), width);
            for (j, &v) in ls.stored.iter().enumerate() {
                let mut wrong_width = None;
                let copied = store.with_row(li, v, |row| {
                    if row.len() == width {
                        rows.row_mut(j).copy_from_slice(row);
                    } else {
                        wrong_width = Some(row.len());
                    }
                });
                if let Some(got) = wrong_width {
                    return Err(ServingError::StoreWidthMismatch {
                        level: li,
                        expected: width,
                        got,
                    });
                }
                if copied.is_none() {
                    // The support builder saw this row, but a concurrent
                    // eviction removed it before the read — retryable.
                    return Err(ServingError::MissingStoredRow { level: li, node: v });
                }
                store_hits += 1;
                mem_bytes += width * 4;
            }
            // Router accounting: the rows of this level owned by other
            // shards traveled as one batched fetch per remote owner.
            store.note_remote(&ls.stored, width);
            staged.push(Some(rows));
        }
        lap(&mut clock, Stage::StoreProbe);

        Ok(PreparedBatch {
            support,
            level0,
            staged,
            bypass_store,
            fault,
            mem_bytes,
            store_hits,
            t0,
            clock,
        })
    }

    /// Back-end stage: relabel, aggregate, transform, write back, and
    /// extract the target logits for a prepared batch.
    ///
    /// Buffers that originated in the front pool (the level-0 gather and
    /// staged store reads) are pushed onto `spent` instead of this stage's
    /// pool, so the caller can circulate them back to the front stage.
    pub(crate) fn execute(
        &self,
        prep: PreparedBatch,
        back: &mut BackStage<'_>,
        spent: &mut Vec<Matrix>,
    ) -> ServingResult<BatchResult> {
        let PreparedBatch {
            support,
            level0,
            mut staged,
            bypass_store,
            fault,
            mut mem_bytes,
            store_hits,
            t0,
            mut clock,
        } = prep;
        let store = if bypass_store {
            StoreView::None
        } else {
            self.store
        };
        // Latch the EWMA-observation skew for the serving layer before any
        // early return: ClockSkew perturbs only the compute-estimate
        // observation, never the batch's latency accounting.
        *back.skew = match fault {
            Fault::ClockSkew { factor } => factor,
            _ => 1.0,
        };
        let n_nodes = self.adj.n_rows();
        // Self-heal: if the previous batch on this scratch panicked or
        // errored mid-flight (dirty set, or the graph changed), rebuild the
        // relabel table from zero.
        if *back.dirty || back.scratch.relabel.len() != n_nodes {
            back.scratch.relabel.clear();
            back.scratch.relabel.resize(n_nodes, ABSENT);
            back.scratch.touched.clear();
        }
        *back.dirty = true;
        if let Some(c) = clock.as_mut() {
            c.resume(); // the inter-stage queue wait is not a stage
        }
        let BackScratch {
            relabel,
            touched,
            pool,
        } = back.scratch;
        let relabel: &mut [u32] = relabel;
        let n_layers = self.model.layers.len();
        let mut macs: u64 = 0;
        let mut level_mat = level0;
        // The level-0 table came from the front pool; every later level
        // table is drawn from (and retired to) this stage's own pool.
        let mut level_from_front = true;
        for v in touched.drain(..) {
            relabel[v] = ABSENT; // audit: allow(no-fail-stop) — touched only ever holds ids previously checked against the graph
        }
        for (i, &v) in support.input_nodes.iter().enumerate() {
            relabel[v] = i as u32; // audit: allow(no-fail-stop) — BatchSupport expands within this graph, so v < n_nodes
            touched.push(v);
        }
        lap(&mut clock, Stage::Relabel);

        for li in 1..=n_layers {
            let ls = &support.layers[li - 1]; // audit: allow(no-fail-stop) — li ranges over 1..=n_layers and support has one entry per layer
            let layer = &self.model.layers[li - 1]; // audit: allow(no-fail-stop) — same loop bound
                                                    // --- compute branch outputs for ls.compute --------------------
            let mut parts: Vec<Matrix> = Vec::with_capacity(layer.branches.len());
            for (bi, branch) in layer.branches.iter().enumerate() {
                let gathered = match branch.k {
                    0 => gather_selected(&level_mat, relabel, &ls.compute, branch, pool),
                    1 => aggregate_mean(&level_mat, relabel, ls, branch, pool),
                    // audit: allow(no-fail-stop) — k ∈ {0,1} is enforced by the constructor assert
                    _ => unreachable!("validated in constructor"),
                };
                // Aggregation adds: one MAC-equivalent per edge per channel.
                if branch.k == 1 {
                    macs += (ls.neigh_ids.len() * branch.in_dim()) as u64;
                }
                let branch_macs = gathered.rows() * branch.in_dim() * branch.out_dim();
                macs += branch_macs as u64;
                lap(&mut clock, Stage::Spmm);
                // Pre-packed weights (no per-call operand pack) into a pooled
                // output buffer; the gathered operand goes back to the pool.
                let mut prod = pool.take_matrix(gathered.rows(), branch.out_dim());
                match self.packed {
                    WeightPacks::Int8(qm) => {
                        // Quantized tier: the blocked int8 kernel over the
                        // mask-folded per-column-quantized pack.
                        // audit: allow(no-fail-stop) — packs are built 1:1 with model branches at construction
                        qgemm_packed_into(&gathered, &qm.branch_packs(li - 1)[bi], &mut prod);
                        if let Some(m) = self.metrics {
                            m.dispatch_int8.inc();
                        }
                    }
                    WeightPacks::F32(pm) => {
                        // Density probe: ReLU-sparsified (or pruned-gather)
                        // operands above the zero-fraction threshold route to
                        // the column-blocked CSR SpMM; everything else takes
                        // the dense blocked GEMM. The probe is a fixed-stride
                        // sample, so the decision is deterministic and
                        // independent of thread count.
                        if branch_macs >= SPARSE_DISPATCH_MIN_MACS
                            && gathered.zero_fraction_sampled(DENSITY_PROBE_SAMPLES)
                                >= SPARSE_DISPATCH_ZERO_FRAC
                        {
                            CsrMatrix::from_dense(&gathered).spmm_into(&branch.weight, &mut prod);
                            if let Some(m) = self.metrics {
                                m.dispatch_sparse.inc();
                            }
                        } else {
                            // audit: allow(no-fail-stop) — packs are built 1:1 with model branches at construction
                            gathered.matmul_packed_into(&pm.branch_packs(li - 1)[bi], &mut prod);
                            if let Some(m) = self.metrics {
                                m.dispatch_dense.inc();
                            }
                        }
                    }
                }
                pool.recycle(gathered);
                parts.push(prod);
                lap(&mut clock, Stage::Gemm);
            }
            let refs: Vec<&Matrix> = parts.iter().collect();
            let mut out = match layer.combine {
                CombineMode::Concat => Matrix::concat_cols_all(&refs),
                CombineMode::Mean => {
                    let (first, rest) =
                        parts
                            .split_first()
                            .ok_or(ServingError::InvariantViolation {
                                check: "engine.combine.branches",
                                detail: format!("layer {li} has no branches to combine"),
                            })?;
                    let mut acc = pool.take_matrix(first.rows(), first.cols());
                    acc.as_mut_slice().copy_from_slice(first.as_slice());
                    for p in rest {
                        acc.add_assign(p);
                    }
                    let inv = 1.0 / parts.len() as f32;
                    for v in acc.as_mut_slice() {
                        *v *= inv;
                    }
                    acc
                }
            };
            for p in parts.drain(..) {
                pool.recycle(p);
            }
            if let Some(b) = &layer.bias {
                out.add_row_vector_assign(b.row(0));
            }
            match layer.activation {
                gcnp_models::Activation::Relu => out.relu_assign(),
                gcnp_models::Activation::None => {}
            }
            mem_bytes += out.nbytes();
            lap(&mut clock, Stage::Gemm); // combine + bias + activation

            // --- assemble the level-li feature table ----------------------
            let width = out.cols();
            let n_rows = ls.compute.len() + ls.stored.len();
            let mut mat = pool.take_matrix(n_rows, width);
            for v in touched.drain(..) {
                relabel[v] = ABSENT; // audit: allow(no-fail-stop) — touched only ever holds ids previously checked against the graph
            }
            for (i, &v) in ls.compute.iter().enumerate() {
                mat.row_mut(i).copy_from_slice(out.row(i));
                relabel[v] = i as u32; // audit: allow(no-fail-stop) — compute nodes come from BatchSupport over this graph
                touched.push(v);
            }
            pool.recycle(out);
            lap(&mut clock, Stage::Relabel);
            if !ls.stored.is_empty() {
                // The store rows were already read (and width-checked) in
                // prepare; splice them in from the staged buffer.
                let rows = staged
                    .get_mut(li - 1)
                    .and_then(Option::take)
                    .ok_or_else(|| ServingError::InvariantViolation {
                        check: "engine.staged.level",
                        detail: format!("level {li} has stored rows but no staged buffer"),
                    })?;
                gcnp_tensor::shape_contract!(
                    "engine.staged.width",
                    rows.cols() == width,
                    "staged level-{li} rows are {} wide but the level table is {width}",
                    rows.cols()
                );
                for (j, &v) in ls.stored.iter().enumerate() {
                    mat.row_mut(ls.compute.len() + j)
                        .copy_from_slice(rows.row(j));
                    relabel[v] = (ls.compute.len() + j) as u32; // audit: allow(no-fail-stop) — stored nodes come from BatchSupport over this graph
                    touched.push(v);
                }
                spent.push(rows);
            }
            lap(&mut clock, Stage::StoreProbe);

            // --- write-back policy (middle levels only) -------------------
            if li < n_layers {
                match self.policy {
                    StorePolicy::None => {}
                    StorePolicy::Roots => {
                        for &v in &support.targets {
                            let r = relabel[v]; // audit: allow(no-fail-stop) — targets were range-checked in prepare
                            if r != ABSENT && (r as usize) < ls.compute.len() {
                                store.put(li, v, mat.row(r as usize))?;
                            }
                        }
                    }
                    StorePolicy::AllVisited => {
                        for (i, &v) in ls.compute.iter().enumerate() {
                            store.put(li, v, mat.row(i))?;
                        }
                    }
                }
                lap(&mut clock, Stage::WriteBack);
            }
            let prev = std::mem::replace(&mut level_mat, mat);
            if level_from_front {
                spent.push(prev);
                level_from_front = false;
            } else {
                pool.recycle(prev);
            }
        }
        store.tick();

        // --- extract target logits ---------------------------------------
        let rows: Vec<usize> = support
            .targets
            .iter()
            .map(|&v| {
                let r = relabel[v]; // audit: allow(no-fail-stop) — targets were range-checked in prepare
                debug_assert_ne!(r, ABSENT, "targets are computed at the output layer");
                r as usize
            })
            .collect();
        let logits = level_mat.gather_rows(&rows);
        if level_from_front {
            spent.push(level_mat);
        } else {
            pool.recycle(level_mat);
        }
        lap(&mut clock, Stage::Relabel); // tick + target extraction
        if let (Some(c), Some(m)) = (clock.as_ref(), self.metrics) {
            c.record(m);
            m.batches.inc();
            m.batch_size.observe(support.targets.len() as f64);
        }
        *back.dirty = false;

        let mut seconds = t0.elapsed().as_secs_f64();
        if let Fault::Straggle { multiplier } = fault {
            // Stall for (multiplier - 1)x the batch's own serving time,
            // capped at 1 s so a chaos schedule cannot hang a test job.
            let stall = (seconds * (multiplier - 1.0)).min(1.0);
            if stall > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(stall));
            }
            seconds = t0.elapsed().as_secs_f64();
        }
        if let Some(m) = self.metrics {
            // End-to-end batch time, including injected straggle — so a
            // chaos run's batch distribution shows the stall the stage
            // timings (busy time only) do not.
            m.batch_seconds.observe(seconds);
            m.scratch_resident.set(pool.retained_bytes() as f64);
        }

        Ok(BatchResult {
            logits,
            targets: support.targets.clone(),
            seconds,
            macs,
            mem_bytes,
            n_supporting: support.n_input_nodes(),
            store_hits,
        })
    }
}

/// Gather rows for `nodes`, selecting the branch's kept channels. `relabel`
/// is the dense node-id → row table for the current level.
// audit: allow(no-fail-stop) — relabel slots and kept-channel indices are built by BatchSupport and the pruner from in-graph ids; a miss is a programmer error caught by the debug_asserts
fn gather_selected(
    mat: &Matrix,
    relabel: &[u32],
    nodes: &[usize],
    branch: &Branch,
    pool: &mut ScratchPool,
) -> Matrix {
    let width = branch.in_dim();
    let mut out = pool.take_matrix(nodes.len(), width);
    for (i, &v) in nodes.iter().enumerate() {
        debug_assert_ne!(relabel[v], ABSENT, "node {v} missing from level table");
        let src = mat.row(relabel[v] as usize);
        let dst = out.row_mut(i);
        match &branch.keep {
            Some(keep) => {
                for (d, &c) in dst.iter_mut().zip(keep) {
                    *d = src[c];
                }
            }
            None => dst.copy_from_slice(src),
        }
    }
    out
}

/// Mean-aggregate the (capped) neighbor rows for each computed node,
/// selecting the branch's kept channels. Nodes without neighbors get zeros
/// (matching row-normalized SpMM on isolated nodes). Parallel across
/// computed nodes; each output row accumulates its neighbors in support
/// order regardless of thread count, so results are bitwise identical
/// across `GCNP_THREADS` settings.
// audit: allow(no-fail-stop) — relabel slots and kept-channel indices are built by BatchSupport and the pruner from in-graph ids; a miss is a programmer error caught by the debug_asserts
fn aggregate_mean(
    mat: &Matrix,
    relabel: &[u32],
    ls: &gcnp_sparse::LayerSupport,
    branch: &Branch,
    pool: &mut ScratchPool,
) -> Matrix {
    let width = branch.in_dim();
    let n = ls.compute.len();
    let mut out = pool.take_matrix(n, width);
    parallel_row_chunks(out.as_mut_slice(), n, width, |start, chunk| {
        for (r, dst) in chunk.chunks_mut(width).enumerate() {
            let nbrs = ls.neighbors(start + r);
            if nbrs.is_empty() {
                continue;
            }
            for &u in nbrs {
                debug_assert_ne!(relabel[u], ABSENT, "neighbor {u} missing from level table");
                let src = mat.row(relabel[u] as usize);
                match &branch.keep {
                    Some(keep) => {
                        for (d, &c) in dst.iter_mut().zip(keep) {
                            *d += src[c];
                        }
                    }
                    None => {
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
            }
            let inv = 1.0 / nbrs.len() as f32;
            for d in dst.iter_mut() {
                *d *= inv;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnp_models::zoo;
    use gcnp_sparse::Normalization;
    use gcnp_tensor::init::seeded_rng;

    fn ring(n: usize) -> CsrMatrix {
        let mut e = Vec::new();
        for i in 0..n as u32 {
            let j = (i + 1) % n as u32;
            e.push((i, j));
            e.push((j, i));
        }
        CsrMatrix::adjacency(n, &e)
    }

    fn setup() -> (CsrMatrix, Matrix, GnnModel) {
        let adj = ring(30);
        let x = Matrix::rand_uniform(30, 6, -1.0, 1.0, &mut seeded_rng(3));
        let model = zoo::graphsage(6, 8, 4, 7);
        (adj, x, model)
    }

    #[test]
    fn batched_equals_full_inference_without_caps() {
        // With no fan-out caps and no store, batched inference must produce
        // exactly the full-inference embeddings for the targets.
        let (adj, x, model) = setup();
        let norm = adj.normalized(Normalization::Row);
        let full = model.forward_full(Some(&norm), &x);
        let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let targets = vec![4usize, 17, 25];
        let res = engine.infer(&targets);
        for (i, &t) in targets.iter().enumerate() {
            for c in 0..4 {
                assert!(
                    (res.logits.get(i, c) - full.get(t, c)).abs() < 1e-4,
                    "target {t} class {c}: {} vs {}",
                    res.logits.get(i, c),
                    full.get(t, c)
                );
            }
        }
        assert_eq!(res.store_hits, 0);
        assert!(res.macs > 0);
    }

    #[test]
    fn store_reuse_matches_recomputation_when_fresh() {
        let (adj, x, model) = setup();
        // Populate the store with exact full-inference hidden features.
        let norm = adj.normalized(Normalization::Row);
        let hs = model.forward_collect(Some(&norm), &x);
        let store = FeatureStore::new(30, 2);
        let all: Vec<usize> = (0..30).collect();
        store.put_rows(1, &all, &hs[0]).unwrap();
        store.put_rows(2, &all, &hs[1]).unwrap();
        let mut engine =
            BatchedEngine::new(&model, &adj, &x, vec![], Some(&store), StorePolicy::None, 0);
        let res = engine.infer(&[10, 11]);
        let full = model.forward_full(Some(&norm), &x);
        for (i, &t) in [10usize, 11].iter().enumerate() {
            for c in 0..4 {
                assert!((res.logits.get(i, c) - full.get(t, c)).abs() < 1e-4);
            }
        }
        assert!(res.store_hits > 0, "store must be used");
        // With everything stored, only the targets' own rows are computed.
        assert_eq!(res.n_supporting, 0, "no raw attributes needed");
    }

    #[test]
    fn store_reduces_supporting_nodes() {
        let (adj, x, model) = setup();
        let mut plain = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let baseline = plain.infer(&[0, 1, 2]);

        let norm = adj.normalized(Normalization::Row);
        let hs = model.forward_collect(Some(&norm), &x);
        let store = FeatureStore::new(30, 2);
        // Store h^(1) for half the nodes.
        let half: Vec<usize> = (0..15).collect();
        store.put_rows(1, &half, &hs[0].gather_rows(&half)).unwrap();
        let mut with_store =
            BatchedEngine::new(&model, &adj, &x, vec![], Some(&store), StorePolicy::None, 0);
        let res = with_store.infer(&[0, 1, 2]);
        assert!(
            res.n_supporting < baseline.n_supporting,
            "{} vs {}",
            res.n_supporting,
            baseline.n_supporting
        );
        assert!(res.macs < baseline.macs);
    }

    #[test]
    fn roots_policy_populates_store() {
        let (adj, x, model) = setup();
        let store = FeatureStore::new(30, 2);
        let mut engine = BatchedEngine::new(
            &model,
            &adj,
            &x,
            vec![],
            Some(&store),
            StorePolicy::Roots,
            0,
        );
        engine.infer(&[5, 6]);
        assert!(
            store.has(1, 5) && store.has(1, 6),
            "roots stored at level 1"
        );
        assert!(store.has(2, 5), "roots stored at level 2");
        assert!(!store.has(1, 7), "non-roots not stored");
        // Second serve of the same nodes hits the store.
        let res = engine.infer(&[5, 6]);
        assert!(res.store_hits > 0);
    }

    #[test]
    fn fanout_caps_reduce_work() {
        // Dense graph so caps bite.
        let mut edges = Vec::new();
        for i in 0..40u32 {
            for j in 0..40u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let adj = CsrMatrix::adjacency(40, &edges);
        let x = Matrix::rand_uniform(40, 6, -1.0, 1.0, &mut seeded_rng(5));
        let model = zoo::graphsage(6, 8, 4, 9);
        let mut uncapped = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let mut capped = BatchedEngine::new(
            &model,
            &adj,
            &x,
            vec![None, Some(4)],
            None,
            StorePolicy::None,
            0,
        );
        let a = uncapped.infer(&[0]);
        let b = capped.infer(&[0]);
        assert!(b.macs < a.macs, "{} vs {}", b.macs, a.macs);
    }

    #[test]
    fn pruned_model_runs_batched() {
        let (adj, x, model) = setup();
        let mut pruned = model.clone();
        // Prune the k=1 branch of layer 0 to channels {0, 2, 4}.
        let keep = vec![0usize, 2, 4];
        let b = &mut pruned.layers[0].branches[1];
        b.weight = b.weight.select_rows(&keep);
        b.keep = Some(keep);
        let mut engine = BatchedEngine::new(&pruned, &adj, &x, vec![], None, StorePolicy::None, 0);
        let res = engine.infer(&[3, 4]);
        assert_eq!(res.logits.shape(), (2, 4));
        assert!(res.logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn thread_count_does_not_change_logits() {
        // Acceptance: batched inference must be numerically identical (well
        // under 1e-5) between GCNP_THREADS=1 and 8 — chunk boundaries only
        // partition rows, they never reorder per-row accumulation.
        fn star(n: usize) -> CsrMatrix {
            let mut e = Vec::new();
            for i in 1..n as u32 {
                e.push((0, i));
                e.push((i, 0));
            }
            CsrMatrix::adjacency(n, &e)
        }
        for adj in [ring(64), star(64)] {
            let n = adj.n_rows();
            let x = Matrix::rand_uniform(n, 12, -1.0, 1.0, &mut seeded_rng(11));
            let model = zoo::graphsage(12, 16, 5, 13);
            let targets: Vec<usize> = (0..n).step_by(3).collect();
            let infer_with = |threads: usize| {
                gcnp_tensor::set_num_threads(threads);
                let mut engine =
                    BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
                engine.infer(&targets).logits
            };
            let serial = infer_with(1);
            let parallel = infer_with(8);
            gcnp_tensor::set_num_threads(0);
            for r in 0..serial.rows() {
                for c in 0..serial.cols() {
                    let (a, b) = (serial.get(r, c), parallel.get(r, c));
                    assert!(
                        (a - b).abs() <= 1e-5,
                        "row {r} col {c}: {a} (1 thread) vs {b} (8 threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_targets_dedupe() {
        let (adj, x, model) = setup();
        let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let res = engine.infer(&[7, 7, 8]);
        assert_eq!(res.targets, vec![7, 8]);
        assert_eq!(res.logits.rows(), 2);
    }

    #[test]
    fn try_infer_rejects_out_of_range_target() {
        let (adj, x, model) = setup();
        let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let err = engine.try_infer(&[3, 99]).unwrap_err();
        assert_eq!(
            err,
            crate::ServingError::TargetOutOfRange {
                node: 99,
                n_nodes: 30
            }
        );
        // The same engine still serves valid requests afterwards.
        let ok = engine.try_infer(&[3]).unwrap();
        assert_eq!(ok.targets, vec![3]);
    }

    #[test]
    fn try_infer_reports_store_width_mismatch() {
        let (adj, x, model) = setup();
        let store = FeatureStore::new(30, 2);
        store.put(1, 11, &[1.0, 2.0]).unwrap(); // model expects width-8 hidden rows
        let mut engine =
            BatchedEngine::new(&model, &adj, &x, vec![], Some(&store), StorePolicy::None, 0);
        // Target 10 aggregates neighbor 11 from the store at level 1.
        let err = engine.try_infer(&[10]).unwrap_err();
        assert_eq!(
            err,
            crate::ServingError::StoreWidthMismatch {
                level: 1,
                expected: 8,
                got: 2
            }
        );
    }

    #[test]
    fn engine_survives_mid_batch_panic() {
        // An injected panic fires mid-batch while the relabel scratch is
        // checked out (`dirty` set): the next call on the same engine must
        // rebuild the scratch and produce correct logits, because
        // `serve_multi` retries batches on recovered workers.
        let (adj, x, model) = setup();
        let plan = crate::FaultPlan {
            panics: 1,
            horizon: 1, // the very first attempt panics
            ..Default::default()
        };
        let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        engine.set_faults(plan.build().unwrap());
        let targets = vec![4usize, 17, 25];
        let crash =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.try_infer(&targets)));
        assert!(crash.is_err(), "first attempt must panic");
        let retry = engine.try_infer(&targets).unwrap();
        let norm = adj.normalized(Normalization::Row);
        let full = model.forward_full(Some(&norm), &x);
        for (i, &t) in targets.iter().enumerate() {
            for c in 0..4 {
                assert!(
                    (retry.logits.get(i, c) - full.get(t, c)).abs() < 1e-4,
                    "post-panic retry diverged at target {t} class {c}"
                );
            }
        }
    }

    #[test]
    fn store_miss_storm_bypasses_the_store() {
        // Under a StoreMiss fault the engine must behave exactly like a
        // store-less engine for that batch: full expansion, zero hits, and
        // no write-backs land.
        let (adj, x, model) = setup();
        let norm = adj.normalized(Normalization::Row);
        let hs = model.forward_collect(Some(&norm), &x);
        let store = FeatureStore::new(30, 2);
        let all: Vec<usize> = (0..30).collect();
        store.put_rows(1, &all, &hs[0]).unwrap();
        store.put_rows(2, &all, &hs[1]).unwrap();
        let plan = crate::FaultPlan {
            storms: 1,
            horizon: 1,
            ..Default::default()
        };
        let mut engine = BatchedEngine::new(
            &model,
            &adj,
            &x,
            vec![],
            Some(&store),
            StorePolicy::AllVisited,
            0,
        );
        engine.set_faults(plan.build().unwrap());
        let stormed = engine.try_infer(&[10, 11]).unwrap();
        assert_eq!(stormed.store_hits, 0, "storm batch must miss everything");
        let warm = engine.try_infer(&[10, 11]).unwrap();
        assert!(warm.store_hits > 0, "next batch hits the store again");
    }

    #[test]
    fn stage_busy_times_bounded_by_batch_and_wall_clock() {
        // Overlap-safe replacement for the old "stage sums tile batch
        // compute within ≤10%" invariant (false once stages overlap): the
        // per-stage histograms record *busy* time, so (a) their sum never
        // exceeds the summed per-batch serving time, (b) each stage's total
        // is bounded by the run's wall clock, and (c) every stage still
        // records exactly once per batch.
        if !gcnp_obs::enabled() {
            return;
        }
        let n = 512;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for d in [1u32, 7, 31] {
                let j = (i + d) % n as u32;
                edges.push((i, j));
                edges.push((j, i));
            }
        }
        let adj = CsrMatrix::adjacency(n, &edges);
        let x = Matrix::rand_uniform(n, 32, -1.0, 1.0, &mut seeded_rng(17));
        let model = zoo::graphsage(32, 64, 8, 19);
        let store = FeatureStore::new(n, 2);
        let registry = Arc::new(gcnp_obs::MetricsRegistry::new());
        let mut engine = BatchedEngine::new(
            &model,
            &adj,
            &x,
            vec![],
            Some(&store),
            StorePolicy::Roots,
            0,
        );
        engine.set_metrics(crate::EngineMetrics::new(&registry));

        let wall_start = Instant::now();
        let mut total_batch_seconds = 0.0f64;
        let n_batches = 8u64;
        for b in 0..n_batches as usize {
            let targets: Vec<usize> = (b * 17..b * 17 + 32).map(|v| v % n).collect();
            total_batch_seconds += engine.try_infer(&targets).unwrap().seconds;
        }
        let wall = wall_start.elapsed().as_secs_f64();

        let snap = registry.snapshot();
        assert_eq!(snap.counters["engine.batches"], n_batches);
        let batch_hist = &snap.histograms["engine.batch.seconds"];
        assert_eq!(batch_hist.count, n_batches);
        let stage_sum: f64 = crate::STAGES
            .iter()
            .map(|s| snap.histograms[&format!("engine.stage.{s}.seconds")].sum)
            .sum();
        // Busy time can only be a subset of the per-batch serving time
        // (prologue, queue wait, and straggle are never charged to stages).
        assert!(
            stage_sum <= total_batch_seconds + 1e-6,
            "stage busy sum {stage_sum:.6}s must not exceed batch seconds \
             {total_batch_seconds:.6}s"
        );
        for s in crate::STAGES {
            let h = &snap.histograms[&format!("engine.stage.{s}.seconds")];
            assert_eq!(h.count, n_batches, "stage {s} must record once per batch");
            assert!(
                h.sum <= wall + 1e-6,
                "stage {s} busy time {:.6}s cannot exceed the wall clock {wall:.6}s",
                h.sum
            );
        }
        // The sequential path still accounts for the bulk of its serving
        // time in stages (sanity that the clock is not dropping laps).
        assert!(
            stage_sum >= 0.5 * total_batch_seconds,
            "sequential stage busy sum {stage_sum:.6}s should dominate batch \
             seconds {total_batch_seconds:.6}s"
        );
    }

    #[test]
    fn straggler_fault_stretches_wall_time_only() {
        let (adj, x, model) = setup();
        let plan = crate::FaultPlan {
            stragglers: 1,
            straggle_multiplier: 3.0,
            horizon: 1,
            ..Default::default()
        };
        let mut fast = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let baseline = fast.try_infer(&[4, 17]).unwrap();
        let mut slow = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        slow.set_faults(plan.build().unwrap());
        let straggled = slow.try_infer(&[4, 17]).unwrap();
        assert!(
            straggled.seconds > baseline.seconds,
            "straggler batch ({:.6}s) must be slower than baseline ({:.6}s)",
            straggled.seconds,
            baseline.seconds
        );
        // Logits are unaffected — the fault only stalls the clock.
        for c in 0..4 {
            assert_eq!(straggled.logits.get(0, c), baseline.logits.get(0, c));
        }
    }

    #[test]
    fn quantized_engine_approximates_f32_logits() {
        let (adj, x, model) = setup();
        let mut f32e = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        let mut q8e = BatchedEngine::new_with_precision(
            &model,
            &adj,
            &x,
            vec![],
            None,
            StorePolicy::None,
            0,
            Precision::Int8,
        );
        assert_eq!(f32e.precision(), Precision::F32);
        assert_eq!(q8e.precision(), Precision::Int8);
        let targets = vec![4usize, 17, 25];
        let a = f32e.infer(&targets);
        let b = q8e.infer(&targets);
        // Per-column symmetric int8 weights + per-row activation scales keep
        // the logits close; exact values differ by quantization noise.
        let mut max_abs = 0.0f32;
        let mut denom = 0.0f32;
        for i in 0..targets.len() {
            for c in 0..4 {
                max_abs = max_abs.max((a.logits.get(i, c) - b.logits.get(i, c)).abs());
                denom = denom.max(a.logits.get(i, c).abs());
            }
        }
        assert!(
            max_abs <= 0.05 * denom.max(1.0),
            "int8 logits drifted: max |Δ| = {max_abs}, max |f32| = {denom}"
        );
        // The quantized tier's weight footprint is 4x smaller, which the
        // per-batch memory accounting must reflect.
        assert!(
            b.mem_bytes < a.mem_bytes,
            "int8 mem {} must undercut f32 mem {}",
            b.mem_bytes,
            a.mem_bytes
        );
    }

    #[test]
    fn dispatch_counters_classify_kernel_choices() {
        if !gcnp_obs::enabled() {
            return; // counters are no-ops in obs-off builds
        }
        let (adj, x, model) = setup();
        let registry = Arc::new(gcnp_obs::MetricsRegistry::new());
        let metrics = crate::EngineMetrics::new(&registry);

        // Dense activations on a small model: every layer GEMM is below the
        // MAC floor, so everything routes to the dense blocked kernel.
        let mut dense = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        dense.set_metrics(Arc::clone(&metrics));
        dense.infer(&[4, 17, 25]);
        assert!(metrics.dispatch_dense.get() > 0, "dense path must engage");
        assert_eq!(metrics.dispatch_sparse.get(), 0);
        assert_eq!(metrics.dispatch_int8.get(), 0);

        // An int8 engine routes every branch GEMM to the quantized kernel.
        let before_dense = metrics.dispatch_dense.get();
        let mut q8 = BatchedEngine::new_with_precision(
            &model,
            &adj,
            &x,
            vec![],
            None,
            StorePolicy::None,
            0,
            Precision::Int8,
        );
        q8.set_metrics(Arc::clone(&metrics));
        q8.infer(&[4, 17, 25]);
        assert!(metrics.dispatch_int8.get() > 0, "int8 path must engage");
        assert_eq!(metrics.dispatch_dense.get(), before_dense);
        assert_eq!(metrics.dispatch_sparse.get(), 0);
    }

    #[test]
    fn sparse_dispatch_engages_on_sparse_features_and_preserves_logits() {
        // Nearly-empty feature rows (a few one-hot attributes) over a wide
        // model: level-0 gathers clear both the zero-fraction threshold and
        // the MAC floor, so layer 1 must take the CSR SpMM path — and the
        // logits must still match full inference.
        let n = 128;
        let d = 96;
        let adj = ring(n);
        let mut x = Matrix::zeros(n, d);
        for v in 0..n {
            x.set(v, v % d, 1.0);
            x.set(v, (v * 7 + 3) % d, 0.5);
        }
        let model = zoo::graphsage(d, 16, 4, 11);
        let targets: Vec<usize> = (0..64).collect();

        let registry = Arc::new(gcnp_obs::MetricsRegistry::new());
        let metrics = crate::EngineMetrics::new(&registry);
        let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        engine.set_metrics(Arc::clone(&metrics));
        let res = engine.infer(&targets);

        if gcnp_obs::enabled() {
            assert!(
                metrics.dispatch_sparse.get() > 0,
                "sparse path must engage on 98%-zero gathers"
            );
            assert!(
                metrics.dispatch_dense.get() > 0,
                "narrow layer-2 GEMMs stay dense"
            );
        }
        let norm = adj.normalized(Normalization::Row);
        let full = model.forward_full(Some(&norm), &x);
        for (i, &t) in targets.iter().enumerate() {
            for c in 0..4 {
                assert!(
                    (res.logits.get(i, c) - full.get(t, c)).abs() < 1e-4,
                    "target {t} class {c}: {} vs {}",
                    res.logits.get(i, c),
                    full.get(t, c)
                );
            }
        }

        // The probe is a fixed-stride sample over the gathered operand, so
        // the kernel choice — and therefore the counters — are deterministic
        // across runs and thread counts.
        let registry2 = Arc::new(gcnp_obs::MetricsRegistry::new());
        let metrics2 = crate::EngineMetrics::new(&registry2);
        let mut engine2 = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
        engine2.set_metrics(Arc::clone(&metrics2));
        engine2.infer(&targets);
        assert_eq!(
            metrics.dispatch_sparse.get(),
            metrics2.dispatch_sparse.get()
        );
        assert_eq!(metrics.dispatch_dense.get(), metrics2.dispatch_dense.get());
    }
}
