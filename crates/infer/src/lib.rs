//! # gcnp-infer
//!
//! Inference engines for pruned and unpruned GNN models.
//!
//! * [`FullEngine`] — full-graph (all nodes) layer-by-layer inference with
//!   MAC counting and wall-clock throughput, the paper's *full inference*
//!   scenario (Table 3);
//! * [`BatchedEngine`] — per-batch inference over the supporting-node
//!   structure of [`gcnp_sparse::BatchSupport`], with hop fan-out caps and
//!   the hidden-feature store (§3.3.2), the paper's *batched inference*
//!   scenario (Table 4);
//! * [`FeatureStore`] — stored hidden features of visited nodes, which lets
//!   neighbors aggregate directly instead of expanding further (turning the
//!   `d^(L−1)` of Eq. 3 toward 1);
//! * [`CostModel`] — the analytic per-node complexity and memory of
//!   Eqs. 2–3, reproducing the paper's #kMACs/node and Mem. columns.

//! * [`ServingError`] / [`faults`] — the overload-resilience layer: typed
//!   serving errors, bounded admission with deadlines, worker panic
//!   recovery, the pruning-tiered degradation ladder, and deterministic
//!   fault injection (see DESIGN.md "Failure model & degradation ladder").

pub mod batched;
pub mod costmodel;
pub mod error;
pub mod faults;
pub mod full;
pub mod metrics;
pub mod pipeline;
pub mod quantized;
pub mod serving;
pub mod shard;
pub mod store;
pub(crate) mod supervisor;
pub mod timing;

pub use batched::{BatchResult, BatchedEngine, Precision, StorePolicy};
pub use costmodel::CostModel;
pub use error::{ServingError, ServingResult};
pub use faults::{Fault, FaultInjector, FaultPlan};
pub use full::{FullEngine, FullResult};
pub use metrics::{
    format_stage_table, stage_breakdown, EngineMetrics, ServingMetrics, ShardMetrics, StageRow,
    StoreMetrics, STAGES,
};
pub use pipeline::{run_batches, PipelineMode};
pub use quantized::QuantizedGnn;
pub use serving::{
    serve_multi, serve_sharded, simulate, simulate_tiered, LadderPolicy, MultiServingReport,
    ServingConfig, ServingReport,
};
pub use shard::{AccretionReport, ShardedStore};
pub use store::FeatureStore;
pub use timing::time_it;
