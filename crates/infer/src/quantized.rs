//! Int8 quantized inference (the paper's §5 edge-device motivation).
//!
//! [`QuantizedGnn`] freezes a trained (possibly pruned) [`GnnModel`] into
//! per-column int8 weights and runs full inference with i32-accumulated
//! GEMMs. Aggregation (`Ã·H`) stays in f32 — on a real accelerator it is
//! bandwidth-bound and benefits from the pruned feature width rather than
//! weight quantization. Pruning and quantization compose: 4× pruning × 4×
//! weight compression ≈ 16× smaller weight memory.

use crate::error::ServingResult;
use gcnp_models::{Activation, CombineMode, GnnModel};
use gcnp_sparse::CsrMatrix;
use gcnp_tensor::{qgemm_packed_into, Matrix, QuantMatrix, QuantPackedB};
use serde::{Deserialize, Serialize};

/// One quantized branch: the kept-channel list plus int8 weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuantBranch {
    k: usize,
    weight: QuantMatrix,
    keep: Option<Vec<usize>>,
}

/// One quantized layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuantLayer {
    branches: Vec<QuantBranch>,
    bias: Option<Matrix>,
    combine: CombineMode,
    activation: Activation,
}

/// A frozen int8 inference model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedGnn {
    layers: Vec<QuantLayer>,
}

impl QuantizedGnn {
    /// Quantize a trained model's weights (biases stay f32 — they are tiny
    /// and added post-accumulation, as on real int8 accelerators).
    ///
    /// Panics on NaN/inf weights under `strict-invariants`; see
    /// [`QuantizedGnn::try_from_model`] for the fallible form.
    pub fn from_model(model: &GnnModel) -> Self {
        assert!(!model.jk, "QuantizedGnn: JK models not supported");
        let layers = model
            .layers
            .iter()
            .map(|l| QuantLayer {
                branches: l
                    .branches
                    .iter()
                    .map(|b| QuantBranch {
                        k: b.k,
                        weight: QuantMatrix::quantize(&b.weight),
                        keep: b.keep.clone(),
                    })
                    .collect(),
                bias: l.bias.clone(),
                combine: l.combine,
                activation: l.activation,
            })
            .collect();
        Self { layers }
    }

    /// [`QuantizedGnn::from_model`], netting NaN/inf weights into a typed
    /// [`crate::ServingError::InvariantViolation`] instead of silently
    /// folding garbage into the quantization scales (a single NaN weight
    /// poisons its whole column's scale). No-op check without
    /// `strict-invariants`.
    pub fn try_from_model(model: &GnnModel) -> ServingResult<Self> {
        assert!(!model.jk, "QuantizedGnn: JK models not supported");
        let mut layers = Vec::with_capacity(model.layers.len());
        for l in &model.layers {
            let mut branches = Vec::with_capacity(l.branches.len());
            for b in &l.branches {
                branches.push(QuantBranch {
                    k: b.k,
                    weight: QuantMatrix::try_quantize(&b.weight)?,
                    keep: b.keep.clone(),
                });
            }
            layers.push(QuantLayer {
                branches,
                bias: l.bias.clone(),
                combine: l.combine,
                activation: l.activation,
            });
        }
        Ok(Self { layers })
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total weight bytes (≈ ¼ of the f32 model).
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.branches.iter().map(|b| b.weight.nbytes()).sum::<usize>()
                    + l.bias.as_ref().map_or(0, Matrix::nbytes)
            })
            .sum()
    }

    /// Full inference with blocked int8 GEMMs: each branch's stored
    /// [`QuantMatrix`] is repacked into the panel layout once per call and
    /// run through [`qgemm_packed_into`] (bitwise identical to the naive
    /// `qmatmul` reference — same quantization grid, exact integer
    /// accumulation, shared dequant).
    pub fn forward_full(&self, adj: Option<&CsrMatrix>, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            let max_k = layer.branches.iter().map(|b| b.k).max().unwrap_or(0);
            assert!(max_k == 0 || adj.is_some(), "graph layer needs adjacency");
            let mut powers: Vec<Matrix> = vec![h.clone()];
            for _ in 0..max_k {
                let next = adj.unwrap().spmm(powers.last().unwrap());
                powers.push(next);
            }
            let parts: Vec<Matrix> = layer
                .branches
                .iter()
                .map(|b| {
                    let pb = QuantPackedB::from_quant(&b.weight);
                    let z = &powers[b.k];
                    let zin = match &b.keep {
                        Some(keep) => z.select_cols(keep),
                        None => z.clone(),
                    };
                    let mut out = Matrix::zeros(zin.rows(), pb.n());
                    qgemm_packed_into(&zin, &pb, &mut out);
                    out
                })
                .collect();
            let refs: Vec<&Matrix> = parts.iter().collect();
            let mut out = match layer.combine {
                CombineMode::Concat => Matrix::concat_cols_all(&refs),
                CombineMode::Mean => {
                    let mut acc = parts[0].clone();
                    for p in &parts[1..] {
                        acc.add_assign(p);
                    }
                    acc.scale(1.0 / parts.len() as f32)
                }
            };
            if let Some(b) = &layer.bias {
                out = out.add_row_vector(b.row(0));
            }
            h = match layer.activation {
                Activation::Relu => out.relu(),
                Activation::None => out,
            };
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnp_models::zoo;
    use gcnp_sparse::Normalization;
    use gcnp_tensor::init::seeded_rng;

    fn setup() -> (CsrMatrix, Matrix, GnnModel) {
        let mut edges = Vec::new();
        for i in 0..30u32 {
            edges.push((i, (i + 1) % 30));
            edges.push(((i + 1) % 30, i));
        }
        let adj = CsrMatrix::adjacency(30, &edges).normalized(Normalization::Row);
        let x = Matrix::rand_uniform(30, 8, -1.0, 1.0, &mut seeded_rng(1));
        (adj, x, zoo::graphsage(8, 8, 3, 2))
    }

    #[test]
    fn quantized_tracks_f32_logits() {
        let (adj, x, model) = setup();
        let exact = model.forward_full(Some(&adj), &x);
        let q = QuantizedGnn::from_model(&model);
        let approx = q.forward_full(Some(&adj), &x);
        let scale = exact.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(
            exact.max_abs_diff(&approx) < 0.1 * scale,
            "int8 deviation {} vs scale {}",
            exact.max_abs_diff(&approx),
            scale
        );
    }

    #[test]
    fn quantized_predictions_mostly_agree() {
        let (adj, x, model) = setup();
        let exact = model.forward_full(Some(&adj), &x).argmax_rows();
        let q = QuantizedGnn::from_model(&model);
        let approx = q.forward_full(Some(&adj), &x).argmax_rows();
        let agree = exact.iter().zip(&approx).filter(|(a, b)| a == b).count();
        assert!(agree >= 28, "only {agree}/30 predictions agree");
    }

    #[test]
    fn weight_memory_shrinks_4x() {
        let (_, _, model) = setup();
        let q = QuantizedGnn::from_model(&model);
        let f32_bytes = model.n_weights() * 4;
        assert!(
            q.weight_bytes() < f32_bytes / 2,
            "{} vs {}",
            q.weight_bytes(),
            f32_bytes
        );
    }

    #[test]
    fn try_from_model_accepts_finite_weights() {
        let (adj, x, model) = setup();
        let q = QuantizedGnn::try_from_model(&model).unwrap();
        // The fallible path quantizes onto the same grid as `from_model`.
        let a = QuantizedGnn::from_model(&model).forward_full(Some(&adj), &x);
        let b = q.forward_full(Some(&adj), &x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[cfg(feature = "strict-invariants")]
    #[test]
    fn try_from_model_traps_nan_weights() {
        let (_, _, mut model) = setup();
        model.layers[0].branches[0].weight.set(1, 2, f32::NAN);
        let err = QuantizedGnn::try_from_model(&model).unwrap_err();
        match err {
            crate::ServingError::InvariantViolation { check, .. } => {
                assert_eq!(check, "quant.weights.finite");
            }
            other => panic!("expected InvariantViolation, got {other:?}"),
        }
    }

    #[test]
    fn quantized_pruned_model_runs() {
        let (adj, x, mut model) = setup();
        let b = &mut model.layers[0].branches[1];
        b.weight = b.weight.select_rows(&[0, 3, 5]);
        b.keep = Some(vec![0, 3, 5]);
        let q = QuantizedGnn::from_model(&model);
        let out = q.forward_full(Some(&adj), &x);
        assert_eq!(out.shape(), (30, 3));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
