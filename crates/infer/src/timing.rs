//! Small wall-clock measurement helper shared by engines and benches.

use std::time::Instant;

/// Run `f` `warmup` times unmeasured, then `iters` times measured, returning
/// the **median** per-iteration seconds (robust to scheduler noise on a
/// shared machine).
pub fn time_it<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "time_it: need at least one iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    // total_cmp cannot panic on NaN (partial_cmp().unwrap() could, if a
    // clock ever misbehaved); NaNs sort last and never become the median.
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let t = time_it(1, 3, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t > 0.0);
    }

    #[test]
    fn median_of_single_iteration() {
        let t = time_it(0, 1, || 42);
        assert!(t >= 0.0);
    }
}
