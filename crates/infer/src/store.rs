//! The hidden-feature store (§3.3.2).
//!
//! Stores `h⁽ˡ⁾` rows of visited nodes per middle layer. During batched
//! inference, a supporting node whose hidden feature is stored aggregates
//! directly from the store instead of expanding to its own neighbors —
//! ideally collapsing batched complexity to full-inference complexity
//! (`d → 1` in Eq. 3).
//!
//! Concurrency: reads dominate (every batch probes the store), writes happen
//! per batch for root nodes — a `parking_lot::RwLock` over per-level dense
//! row tables fits this pattern.

use gcnp_tensor::Matrix;
use parking_lot::RwLock;

struct Level {
    /// `rows[v]` is `Some(h_row)` when node `v`'s features are stored.
    rows: Vec<Option<Box<[f32]>>>,
    /// Batch counter at write time, for staleness policies on evolving
    /// graphs (the paper discards features past an accuracy threshold).
    stamps: Vec<u32>,
    count: usize,
}

/// Stored hidden features for the middle layers of an `L`-layer model.
pub struct FeatureStore {
    levels: RwLock<Vec<Level>>,
    n_nodes: usize,
    clock: RwLock<u32>,
}

impl FeatureStore {
    /// An empty store for `n_nodes` nodes and `n_levels` middle layers
    /// (levels are 1-based: level `l` stores `h⁽ˡ⁾`).
    pub fn new(n_nodes: usize, n_levels: usize) -> Self {
        let levels = (0..n_levels)
            .map(|_| Level {
                rows: (0..n_nodes).map(|_| None).collect(),
                stamps: vec![0; n_nodes],
                count: 0,
            })
            .collect();
        Self { levels: RwLock::new(levels), n_nodes, clock: RwLock::new(0) }
    }

    /// Number of nodes the store covers.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// True when `h⁽ˡᵉᵛᵉˡ⁾` of `node` is stored (level 1-based).
    pub fn has(&self, level: usize, node: usize) -> bool {
        let levels = self.levels.read();
        levels
            .get(level - 1)
            .is_some_and(|l| l.rows.get(node).is_some_and(Option::is_some))
    }

    /// Copy the stored row, if present.
    pub fn get(&self, level: usize, node: usize) -> Option<Vec<f32>> {
        let levels = self.levels.read();
        levels.get(level - 1)?.rows.get(node)?.as_ref().map(|r| r.to_vec())
    }

    /// Store (or overwrite) one node's hidden feature row.
    pub fn put(&self, level: usize, node: usize, row: &[f32]) {
        let mut levels = self.levels.write();
        let clock = *self.clock.read();
        let l = &mut levels[level - 1];
        if l.rows[node].is_none() {
            l.count += 1;
        }
        l.rows[node] = Some(row.into());
        l.stamps[node] = clock;
    }

    /// Bulk-load rows of `h` for `nodes` at `level` (offline pre-population,
    /// e.g. training + validation nodes after training).
    pub fn put_rows(&self, level: usize, nodes: &[usize], h: &Matrix) {
        assert_eq!(nodes.len(), h.rows(), "put_rows: node/row count mismatch");
        for (i, &v) in nodes.iter().enumerate() {
            self.put(level, v, h.row(i));
        }
    }

    /// Number of stored rows at `level`.
    pub fn len(&self, level: usize) -> usize {
        self.levels.read()[level - 1].count
    }

    /// True when nothing is stored at `level`.
    pub fn is_empty(&self, level: usize) -> bool {
        self.len(level) == 0
    }

    /// Advance the logical clock (call once per served batch).
    pub fn tick(&self) {
        *self.clock.write() += 1;
    }

    /// Evict rows older than `max_age` ticks — the staleness policy for
    /// evolving graphs (§3.3.2: discard out-dated features).
    pub fn evict_older_than(&self, max_age: u32) {
        let clock = *self.clock.read();
        let mut levels = self.levels.write();
        for l in levels.iter_mut() {
            for (row, stamp) in l.rows.iter_mut().zip(&l.stamps) {
                if row.is_some() && clock.saturating_sub(*stamp) > max_age {
                    *row = None;
                    l.count -= 1;
                }
            }
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut levels = self.levels.write();
        for l in levels.iter_mut() {
            for row in l.rows.iter_mut() {
                *row = None;
            }
            l.stamps.fill(0);
            l.count = 0;
        }
    }

    /// Estimated heap bytes of the stored rows.
    pub fn nbytes(&self) -> usize {
        let levels = self.levels.read();
        levels
            .iter()
            .map(|l| {
                l.rows
                    .iter()
                    .filter_map(|r| r.as_ref().map(|b| b.len() * 4))
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = FeatureStore::new(10, 2);
        assert!(!s.has(1, 3));
        s.put(1, 3, &[1.0, 2.0]);
        assert!(s.has(1, 3));
        assert_eq!(s.get(1, 3), Some(vec![1.0, 2.0]));
        assert!(!s.has(2, 3), "levels are independent");
        assert_eq!(s.len(1), 1);
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let s = FeatureStore::new(4, 1);
        s.put(1, 0, &[1.0]);
        s.put(1, 0, &[2.0]);
        assert_eq!(s.len(1), 1);
        assert_eq!(s.get(1, 0), Some(vec![2.0]));
    }

    #[test]
    fn bulk_load_from_matrix() {
        let s = FeatureStore::new(6, 1);
        let h = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        s.put_rows(1, &[5, 1], &h);
        assert_eq!(s.get(1, 5), Some(vec![1., 2., 3.]));
        assert_eq!(s.get(1, 1), Some(vec![4., 5., 6.]));
        assert_eq!(s.len(1), 2);
    }

    #[test]
    fn eviction_by_age() {
        let s = FeatureStore::new(4, 1);
        s.put(1, 0, &[1.0]);
        s.tick();
        s.tick();
        s.put(1, 1, &[2.0]);
        s.evict_older_than(1);
        assert!(!s.has(1, 0), "old row evicted");
        assert!(s.has(1, 1), "fresh row kept");
    }

    #[test]
    fn clear_resets() {
        let s = FeatureStore::new(4, 2);
        s.put(1, 0, &[1.0]);
        s.put(2, 1, &[2.0]);
        s.clear();
        assert_eq!(s.len(1) + s.len(2), 0);
        assert_eq!(s.nbytes(), 0);
    }

    #[test]
    fn nbytes_counts_rows() {
        let s = FeatureStore::new(4, 1);
        s.put(1, 0, &[1.0, 2.0, 3.0]);
        assert_eq!(s.nbytes(), 12);
    }
}
