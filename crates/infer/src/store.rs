//! The hidden-feature store (§3.3.2).
//!
//! Stores `h⁽ˡ⁾` rows of visited nodes per middle layer. During batched
//! inference, a supporting node whose hidden feature is stored aggregates
//! directly from the store instead of expanding to its own neighbors —
//! ideally collapsing batched complexity to full-inference complexity
//! (`d → 1` in Eq. 3).
//!
//! Concurrency: reads dominate (every batch probes the store) and, with
//! multi-worker serving, several engine replicas hit the store at once. The
//! store is therefore **lock-striped**: node ids are sharded across
//! [`N_STRIPES`] independent `RwLock`-protected shards (`stripe = node mod
//! N_STRIPES`), so concurrent writers to different nodes rarely contend and
//! readers never block readers. The hot read path is [`FeatureStore::with_row`],
//! which lends the row to a closure under the stripe's read guard — no
//! per-hit allocation, unlike [`FeatureStore::get`] which copies.
//!
//! Crash tolerance: stripe guards recover from lock poisoning (a worker
//! that panics while writing must not brick the store shared by the
//! surviving replicas) — see `FeatureStore::read_stripe` for why recovery
//! is sound.

use crate::error::{ServingError, ServingResult};
use crate::metrics::StoreMetrics;
use gcnp_obs::MetricsRegistry;
use gcnp_tensor::Matrix;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of lock stripes; power of two so `node & (N_STRIPES - 1)` selects
/// the stripe. 16 keeps contention negligible for typical worker counts
/// (≤ 16 replicas) at ~1 KiB of lock overhead.
pub const N_STRIPES: usize = 16;

/// Corruption events on one stripe before its circuit breaker trips and the
/// whole stripe is bypassed (every probe misses, forcing re-gather from
/// level-0). Quarantining individual rows handles isolated flips; a stripe
/// that keeps producing mismatches is treated as bad memory.
pub const STRIPE_BREAKER_THRESHOLD: u32 = 3;

/// Dependency-free xxhash64-style checksum over a row's f32 bit patterns.
/// Not cryptographic — it only needs to make a single flipped bit (the
/// `RowFlip` fault, or real silent corruption) detectably change the sum.
pub fn row_checksum(row: &[f32]) -> u64 {
    const P1: u64 = 0x9E37_79B1_85EB_CA87;
    const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    const P3: u64 = 0x1656_67B1_9E37_79F9;
    let mut h = P3 ^ (row.len() as u64).wrapping_mul(P1);
    for chunk in row.chunks(2) {
        let mut lane = chunk.first().map_or(0, |v| v.to_bits() as u64);
        if let Some(second) = chunk.get(1) {
            lane |= (second.to_bits() as u64) << 32;
        }
        h ^= lane.wrapping_mul(P2).rotate_left(31).wrapping_mul(P1);
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P2);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

/// One level's rows owned by one stripe. Nodes are mapped to local slots by
/// `node / N_STRIPES`, keeping each shard dense.
struct StripeLevel {
    /// `rows[local]` is `Some(h_row)` when the node's features are stored.
    rows: Vec<Option<Box<[f32]>>>,
    /// Batch counter at write time, for staleness policies on evolving
    /// graphs (the paper discards features past an accuracy threshold).
    stamps: Vec<u32>,
    /// [`row_checksum`] of each stored row, written with it under the same
    /// guard; meaningless while `rows[local]` is `None`.
    sums: Vec<u64>,
    count: usize,
}

struct Stripe {
    levels: Vec<StripeLevel>,
}

/// A stripe guard carrying its runtime lock-order token (`lock-order`
/// feature): the token lives exactly as long as the guard, so the tracker
/// sees `store.stripe` on the acquisition stack whenever a stripe is held.
struct OrderedGuard<G> {
    guard: G,
    _order: gcnp_tensor::lockcheck::Token,
}

impl<G: std::ops::Deref> std::ops::Deref for OrderedGuard<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: std::ops::DerefMut> std::ops::DerefMut for OrderedGuard<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

/// Stored hidden features for the middle layers of an `L`-layer model,
/// sharded across [`N_STRIPES`] lock stripes keyed by node id.
pub struct FeatureStore {
    stripes: Vec<RwLock<Stripe>>, // lock: store.stripe
    n_nodes: usize,
    n_levels: usize,
    clock: AtomicU32,
    /// Per-stripe corruption event counts; a stripe whose count reaches
    /// [`STRIPE_BREAKER_THRESHOLD`] is bypassed entirely (circuit breaker).
    corruptions: Vec<AtomicU32>,
    /// Checksum mismatches observed on read (each is also quarantined).
    detected: AtomicU64,
    /// Rows evicted because their checksum no longer matched.
    quarantined: AtomicU64,
    /// Optional hit/miss/evict/write counters (see
    /// [`FeatureStore::attach_metrics`]); unset stores count nothing.
    metrics: OnceLock<StoreMetrics>,
}

#[inline]
fn stripe_of(node: usize) -> usize {
    node & (N_STRIPES - 1)
}

#[inline]
fn local_of(node: usize) -> usize {
    node / N_STRIPES
}

impl FeatureStore {
    /// Acquire stripe `idx`'s read guard, recovering from poison. A stripe
    /// is only poisoned when a thread panicked *while holding the write
    /// guard*; every write path here fully populates its row before the
    /// guard drops (the `Box<[f32]>` is built outside the lock), so the
    /// data behind a poisoned lock is still consistent — a worker crash
    /// must not brick the shared store for the surviving replicas. Each
    /// recovery is counted in `store.poison_recovered`.
    // lock: acquires store.stripe
    #[inline]
    fn read_stripe(&self, idx: usize) -> OrderedGuard<RwLockReadGuard<'_, Stripe>> {
        let order = gcnp_tensor::lockcheck::acquire("store.stripe");
        let lock = &self.stripes[idx & (N_STRIPES - 1)]; // audit: allow(no-fail-stop) — masked into 0..N_STRIPES and the store holds exactly N_STRIPES stripes
        let guard = lock.read().unwrap_or_else(|e| {
            if let Some(m) = self.metrics.get() {
                m.poison_recovered.inc();
            }
            e.into_inner()
        });
        OrderedGuard {
            guard,
            _order: order,
        }
    }

    /// Acquire stripe `idx`'s write guard, recovering from poison (see
    /// `FeatureStore::read_stripe`).
    // lock: acquires store.stripe
    #[inline]
    fn write_stripe(&self, idx: usize) -> OrderedGuard<RwLockWriteGuard<'_, Stripe>> {
        let order = gcnp_tensor::lockcheck::acquire("store.stripe");
        let lock = &self.stripes[idx & (N_STRIPES - 1)]; // audit: allow(no-fail-stop) — masked into 0..N_STRIPES and the store holds exactly N_STRIPES stripes
        let guard = lock.write().unwrap_or_else(|e| {
            if let Some(m) = self.metrics.get() {
                m.poison_recovered.inc();
            }
            e.into_inner()
        });
        OrderedGuard {
            guard,
            _order: order,
        }
    }

    /// An empty store for `n_nodes` nodes and `n_levels` middle layers
    /// (levels are 1-based: level `l` stores `h⁽ˡ⁾`).
    pub fn new(n_nodes: usize, n_levels: usize) -> Self {
        let per_stripe = n_nodes.div_ceil(N_STRIPES);
        let stripes = (0..N_STRIPES)
            .map(|_| {
                RwLock::new(Stripe {
                    levels: (0..n_levels)
                        .map(|_| StripeLevel {
                            rows: (0..per_stripe).map(|_| None).collect(),
                            stamps: vec![0; per_stripe],
                            sums: vec![0; per_stripe],
                            count: 0,
                        })
                        .collect(),
                })
            })
            .collect();
        Self {
            stripes,
            n_nodes,
            n_levels,
            clock: AtomicU32::new(0),
            corruptions: (0..N_STRIPES).map(|_| AtomicU32::new(0)).collect(),
            detected: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// Attach per-level hit/miss/evict/write counters resolved from
    /// `registry` (names `store.{hit|miss|evict|write}.l{level}` plus
    /// `store.poison_recovered`). First call wins; later calls are ignored —
    /// the fleet shares one store and one registry, so re-attachment is a
    /// no-op rather than an error.
    pub fn attach_metrics(&self, registry: &Arc<MetricsRegistry>) {
        let _ = self.metrics.set(StoreMetrics::new(registry, self.n_levels));
    }

    /// Number of nodes the store covers.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of middle layers the store covers.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// True when `h⁽ˡᵉᵛᵉˡ⁾` of `node` is stored (level 1-based). In-bounds
    /// probes count toward `store.{hit|miss}.l{level}` (out-of-bounds probes
    /// are caller bugs, not cache misses).
    pub fn has(&self, level: usize, node: usize) -> bool {
        if node >= self.n_nodes || level == 0 || level > self.n_levels {
            return false;
        }
        let hit = if self.stripe_bypassed(stripe_of(node)) {
            false // breaker open: the whole stripe reads as absent
        } else {
            let stripe = self.read_stripe(stripe_of(node));
            stripe.levels[level - 1].rows[local_of(node)].is_some() // audit: allow(no-fail-stop) — level/node bounds checked above
        };
        if let Some(m) = self.metrics.get() {
            if hit {
                m.hit(level);
            } else {
                m.miss(level);
            }
        }
        hit
    }

    /// Lend the stored row to `f` under the stripe's read guard — the
    /// copy-free read path for hot loops. Returns `None` (without calling
    /// `f`) when the row is absent, when its stripe's circuit breaker is
    /// open, or when the row's [`row_checksum`] no longer matches — a
    /// mismatched row is quarantined (evicted and counted) instead of
    /// served, so corrupted data can never reach a batch. Deliberately
    /// uncounted: the engine probes [`FeatureStore::has`] during expansion
    /// and reads the row here afterwards, so counting both would
    /// double-report every hit.
    pub fn with_row<R>(&self, level: usize, node: usize, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        if node >= self.n_nodes || level == 0 || level > self.n_levels {
            return None;
        }
        if self.stripe_bypassed(stripe_of(node)) {
            return None;
        }
        {
            let stripe = self.read_stripe(stripe_of(node));
            let l = &stripe.levels[level - 1]; // audit: allow(no-fail-stop) — level bounds checked above
            let local = local_of(node);
            // audit: allow(no-fail-stop) — every node < n_nodes has a local slot by construction
            match l.rows[local].as_deref() {
                None => return None,
                Some(row) if row_checksum(row) == l.sums[local] => return Some(f(row)), // audit: allow(no-fail-stop) — same validated slot
                Some(_) => {} // checksum mismatch: fall through, guard drops
            }
        }
        self.quarantine(level, node);
        None
    }

    /// True when `stripe`'s circuit breaker is open.
    fn stripe_bypassed(&self, stripe: usize) -> bool {
        self.corruptions
            .get(stripe)
            .is_some_and(|c| c.load(Ordering::Acquire) >= STRIPE_BREAKER_THRESHOLD)
    }

    /// Evict a row whose checksum failed, under the write guard (re-checked
    /// there: a concurrent `put` may have replaced the row since the read).
    fn quarantine(&self, level: usize, node: usize) {
        self.detected.fetch_add(1, Ordering::Relaxed);
        let mut still_corrupt = false;
        {
            let mut stripe = self.write_stripe(stripe_of(node));
            let l = &mut stripe.levels[level - 1]; // audit: allow(no-fail-stop) — bounds validated by the only caller (with_row)
            let local = local_of(node);
            // audit: allow(no-fail-stop) — every node < n_nodes has a local slot by construction
            if let Some(row) = l.rows[local].as_deref() {
                // audit: allow(no-fail-stop) — same validated slot
                if row_checksum(row) != l.sums[local] {
                    // audit: allow(no-fail-stop) — same validated slot
                    l.rows[local] = None;
                    l.count -= 1;
                    still_corrupt = true;
                }
            }
        }
        if !still_corrupt {
            return;
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.corruptions.get(stripe_of(node)) {
            c.fetch_add(1, Ordering::AcqRel);
        }
        if let Some(m) = self.metrics.get() {
            m.corruption_detected.inc();
            m.corruption_quarantined.inc();
        }
    }

    /// `(detected, quarantined)` checksum-mismatch events so far —
    /// obs-independent, so chaos acceptance tests hold in `obs-off` builds.
    pub fn corruption_counts(&self) -> (u64, u64) {
        (
            self.detected.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
        )
    }

    /// Number of stripes whose circuit breaker is currently open.
    pub fn bypassed_stripes(&self) -> usize {
        (0..N_STRIPES).filter(|&s| self.stripe_bypassed(s)).count()
    }

    /// Fault hook for [`crate::Fault::RowFlip`]: flip one bit of one
    /// resident row, chosen deterministically from `seed`, *without*
    /// updating its checksum — exactly what silent memory corruption looks
    /// like. Returns the `(level, node)` hit, or `None` when the store holds
    /// no rows. The next [`FeatureStore::with_row`] on that row detects the
    /// mismatch and quarantines it.
    pub fn inject_bit_flip(&self, seed: u64) -> Option<(usize, usize)> {
        let total: usize = (0..N_STRIPES)
            .map(|i| {
                let stripe = self.read_stripe(i);
                stripe.levels.iter().map(|l| l.count).sum::<usize>()
            })
            .sum();
        if total == 0 {
            return None;
        }
        let mut k = (seed % total as u64) as usize;
        for i in 0..N_STRIPES {
            let mut stripe = self.write_stripe(i);
            for (li, l) in stripe.levels.iter_mut().enumerate() {
                if k >= l.count {
                    k -= l.count;
                    continue;
                }
                for (local, row) in l.rows.iter_mut().enumerate() {
                    let Some(row) = row.as_deref_mut() else {
                        continue;
                    };
                    if k > 0 {
                        k -= 1;
                        continue;
                    }
                    let elem = (seed >> 8) as usize % row.len().max(1);
                    if let Some(v) = row.get_mut(elem) {
                        *v = f32::from_bits(v.to_bits() ^ (1 << ((seed >> 16) % 23)));
                    }
                    return Some((li + 1, local * N_STRIPES + i));
                }
            }
        }
        None
    }

    /// Copy the stored row, if present. Prefer [`FeatureStore::with_row`] in
    /// hot loops; this allocates per hit.
    pub fn get(&self, level: usize, node: usize) -> Option<Vec<f32>> {
        self.with_row(level, node, |row| row.to_vec())
    }

    /// Store (or overwrite) one node's hidden feature row. A write that
    /// addresses a level or node outside the store's bounds is a typed
    /// [`ServingError::InvariantViolation`], not a worker panic — a store
    /// sized for a different graph or model must degrade, not abort.
    pub fn put(&self, level: usize, node: usize, row: &[f32]) -> ServingResult<()> {
        if node >= self.n_nodes || level == 0 || level > self.n_levels {
            return Err(ServingError::InvariantViolation {
                check: "store.put.bounds",
                detail: format!(
                    "level {level} node {node} outside store bounds ({} levels, {} nodes)",
                    self.n_levels, self.n_nodes
                ),
            });
        }
        if let Some(m) = self.metrics.get() {
            m.write(level);
        }
        let clock = self.clock.load(Ordering::Relaxed);
        let sum = row_checksum(row);
        let mut stripe = self.write_stripe(stripe_of(node));
        let l = &mut stripe.levels[level - 1]; // audit: allow(no-fail-stop) — level bounds validated above
        let local = local_of(node);
        // audit: allow(no-fail-stop) — every node < n_nodes has a local slot by construction
        if l.rows[local].is_none() {
            l.count += 1;
        }
        l.rows[local] = Some(row.into()); // audit: allow(no-fail-stop) — same validated slot
        l.stamps[local] = clock; // audit: allow(no-fail-stop) — same validated slot
        l.sums[local] = sum; // audit: allow(no-fail-stop) — same validated slot
        Ok(())
    }

    /// Bulk-load rows of `h` for `nodes` at `level` (offline pre-population,
    /// e.g. training + validation nodes after training). Rejects a
    /// node-list/matrix arity mismatch as a typed error.
    pub fn put_rows(&self, level: usize, nodes: &[usize], h: &Matrix) -> ServingResult<()> {
        if nodes.len() != h.rows() {
            return Err(ServingError::InvariantViolation {
                check: "store.put_rows.arity",
                detail: format!("{} nodes vs {} matrix rows", nodes.len(), h.rows()),
            });
        }
        for (i, &v) in nodes.iter().enumerate() {
            self.put(level, v, h.row(i))?;
        }
        Ok(())
    }

    /// Invalidate one node's stored row at `level`, returning whether a row
    /// was actually removed. This is the incremental-invalidation primitive
    /// of graph accretion (see `crate::shard::ShardedStore::accrete`): a new
    /// edge dirties only the affected L-hop reverse neighborhoods, and each
    /// dirty `(level, node)` pair is dropped here instead of `clear()`ing
    /// the store. Out-of-bounds coordinates are a no-op `false` — callers
    /// walk dirty sets derived from a *newer* graph than the store was
    /// sized for, and unknown nodes trivially have nothing to invalidate.
    pub fn remove(&self, level: usize, node: usize) -> bool {
        if node >= self.n_nodes || level == 0 || level > self.n_levels {
            return false;
        }
        let removed = {
            let mut stripe = self.write_stripe(stripe_of(node));
            let l = &mut stripe.levels[level - 1]; // audit: allow(no-fail-stop) — level bounds validated above
            let local = local_of(node);
            // audit: allow(no-fail-stop) — every node < n_nodes has a local slot by construction
            let slot = &mut l.rows[local];
            if slot.is_some() {
                *slot = None;
                l.count -= 1;
                true
            } else {
                false
            }
        };
        if removed {
            if let Some(m) = self.metrics.get() {
                m.evict(level, 1);
            }
        }
        removed
    }

    /// Number of stored rows at `level` (summed across stripes); 0 for a
    /// level the store does not cover.
    pub fn len(&self, level: usize) -> usize {
        if level == 0 || level > self.n_levels {
            return 0;
        }
        (0..N_STRIPES)
            .map(|i| self.read_stripe(i).levels[level - 1].count) // audit: allow(no-fail-stop) — level bounds checked above
            .sum()
    }

    /// True when nothing is stored at `level`.
    pub fn is_empty(&self, level: usize) -> bool {
        self.len(level) == 0
    }

    /// Advance the logical clock (call once per served batch).
    pub fn tick(&self) {
        self.clock.fetch_add(1, Ordering::Relaxed);
    }

    /// Evict rows older than `max_age` ticks — the staleness policy for
    /// evolving graphs (§3.3.2: discard out-dated features). Takes each
    /// stripe's write lock in turn, so concurrent serving only ever blocks
    /// on one stripe at a time.
    pub fn evict_older_than(&self, max_age: u32) {
        let clock = self.clock.load(Ordering::Relaxed);
        // Per-level eviction tallies, reported to the counters only after
        // every stripe guard has been dropped.
        let mut evicted = vec![0u64; self.n_levels];
        for i in 0..N_STRIPES {
            let mut stripe = self.write_stripe(i);
            for (li, l) in stripe.levels.iter_mut().enumerate() {
                for (row, stamp) in l.rows.iter_mut().zip(&l.stamps) {
                    if row.is_some() && clock.saturating_sub(*stamp) > max_age {
                        *row = None;
                        l.count -= 1;
                        if let Some(e) = evicted.get_mut(li) {
                            *e += 1;
                        }
                    }
                }
            }
        }
        if let Some(m) = self.metrics.get() {
            for (li, &n) in evicted.iter().enumerate() {
                if n > 0 {
                    m.evict(li + 1, n);
                }
            }
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        for i in 0..N_STRIPES {
            let mut stripe = self.write_stripe(i);
            for l in stripe.levels.iter_mut() {
                for row in l.rows.iter_mut() {
                    *row = None;
                }
                l.stamps.fill(0);
                l.sums.fill(0);
                l.count = 0;
            }
        }
        for c in &self.corruptions {
            c.store(0, Ordering::Release);
        }
    }

    /// Estimated heap bytes of the stored rows.
    pub fn nbytes(&self) -> usize {
        (0..N_STRIPES)
            .map(|i| {
                let stripe = self.read_stripe(i);
                stripe
                    .levels
                    .iter()
                    .map(|l| {
                        l.rows
                            .iter()
                            .filter_map(|r| r.as_ref().map(|b| b.len() * 4))
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let s = FeatureStore::new(10, 2);
        assert!(!s.has(1, 3));
        s.put(1, 3, &[1.0, 2.0]).unwrap();
        assert!(s.has(1, 3));
        assert_eq!(s.get(1, 3), Some(vec![1.0, 2.0]));
        assert!(!s.has(2, 3), "levels are independent");
        assert_eq!(s.len(1), 1);
    }

    #[test]
    fn with_row_lends_without_copy() {
        let s = FeatureStore::new(40, 1);
        s.put(1, 33, &[3.0, 4.0]).unwrap();
        let norm = s.with_row(1, 33, |row| row.iter().map(|v| v * v).sum::<f32>());
        assert_eq!(norm, Some(25.0));
        assert_eq!(
            s.with_row(1, 7, |_| unreachable!("absent row must not call f")),
            None::<()>
        );
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let s = FeatureStore::new(4, 1);
        s.put(1, 0, &[1.0]).unwrap();
        s.put(1, 0, &[2.0]).unwrap();
        assert_eq!(s.len(1), 1);
        assert_eq!(s.get(1, 0), Some(vec![2.0]));
    }

    #[test]
    fn bulk_load_from_matrix() {
        let s = FeatureStore::new(6, 1);
        let h = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        s.put_rows(1, &[5, 1], &h).unwrap();
        assert_eq!(s.get(1, 5), Some(vec![1., 2., 3.]));
        assert_eq!(s.get(1, 1), Some(vec![4., 5., 6.]));
        assert_eq!(s.len(1), 2);
    }

    #[test]
    fn eviction_by_age() {
        let s = FeatureStore::new(4, 1);
        s.put(1, 0, &[1.0]).unwrap();
        s.tick();
        s.tick();
        s.put(1, 1, &[2.0]).unwrap();
        s.evict_older_than(1);
        assert!(!s.has(1, 0), "old row evicted");
        assert!(s.has(1, 1), "fresh row kept");
    }

    #[test]
    fn clear_resets() {
        let s = FeatureStore::new(4, 2);
        s.put(1, 0, &[1.0]).unwrap();
        s.put(2, 1, &[2.0]).unwrap();
        s.clear();
        assert_eq!(s.len(1) + s.len(2), 0);
        assert_eq!(s.nbytes(), 0);
    }

    #[test]
    fn nbytes_counts_rows() {
        let s = FeatureStore::new(4, 1);
        s.put(1, 0, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.nbytes(), 12);
    }

    #[test]
    fn covers_every_stripe() {
        // Nodes spanning all residues mod N_STRIPES land in distinct shards
        // and every one is retrievable.
        let n = 3 * N_STRIPES + 5;
        let s = FeatureStore::new(n, 1);
        for v in 0..n {
            s.put(1, v, &[v as f32]).unwrap();
        }
        assert_eq!(s.len(1), n);
        for v in 0..n {
            assert_eq!(s.get(1, v), Some(vec![v as f32]));
        }
    }

    /// Poison recovery: a thread that panics while holding a stripe's write
    /// guard poisons the `RwLock`; the store must keep serving (reads,
    /// writes, len, eviction) on that stripe instead of propagating the
    /// poison panic to every surviving worker.
    #[test]
    fn poisoned_stripe_still_serves() {
        let store = Arc::new(FeatureStore::new(2 * N_STRIPES, 1));
        let registry = Arc::new(MetricsRegistry::new());
        store.attach_metrics(&registry);
        store.put(1, 0, &[1.0, 2.0]).unwrap();
        store.put(1, N_STRIPES, &[3.0, 4.0]).unwrap(); // same stripe as node 0
        let s = Arc::clone(&store);
        let crash = std::thread::spawn(move || {
            let _guard = s.stripes[stripe_of(0)].write().unwrap();
            panic!("injected crash while holding the stripe 0 write guard");
        });
        assert!(crash.join().is_err(), "the crashing thread must panic");
        assert!(store.stripes[stripe_of(0)].is_poisoned());

        // Reads on the poisoned stripe recover and see consistent data.
        assert_eq!(store.get(1, 0), Some(vec![1.0, 2.0]));
        assert_eq!(
            store.with_row(1, N_STRIPES, |r| r[0]),
            Some(3.0),
            "second row on the poisoned stripe is intact"
        );
        // Writes, bookkeeping and eviction keep working too.
        store.put(1, 0, &[9.0, 9.0]).unwrap();
        assert_eq!(store.get(1, 0), Some(vec![9.0, 9.0]));
        assert_eq!(store.len(1), 2);
        assert!(store.nbytes() > 0);
        store.tick();
        store.tick();
        store.evict_older_than(0);
        assert_eq!(store.len(1), 0, "eviction traverses the poisoned stripe");
        if gcnp_obs::enabled() {
            let snap = registry.snapshot();
            assert!(
                snap.counters["store.poison_recovered"] > 0,
                "every recovered acquisition on the poisoned stripe is counted"
            );
            assert_eq!(snap.counters["store.write.l1"], 3, "three puts");
            assert_eq!(snap.counters["store.evict.l1"], 2, "both rows evicted");
        }
    }

    #[test]
    fn metrics_count_hits_misses_and_writes() {
        let store = FeatureStore::new(64, 2);
        let registry = Arc::new(MetricsRegistry::new());
        store.attach_metrics(&registry);
        store.put(1, 3, &[1.0]).unwrap();
        assert!(store.has(1, 3)); // hit
        assert!(!store.has(1, 4)); // miss
        assert!(!store.has(2, 3)); // miss on the other level
        assert!(!store.has(1, 999)); // out of bounds: NOT counted
        store.with_row(1, 3, |_| ()); // read path: deliberately uncounted
        if !gcnp_obs::enabled() {
            return;
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.hit.l1"], 1);
        assert_eq!(snap.counters["store.miss.l1"], 1);
        assert_eq!(snap.counters["store.miss.l2"], 1);
        assert_eq!(snap.counters["store.write.l1"], 1);
        assert_eq!(snap.counters["store.poison_recovered"], 0);
        // Second attach is a no-op, not a panic, and counting continues.
        store.attach_metrics(&registry);
        assert!(store.has(1, 3));
        assert_eq!(registry.snapshot().counters["store.hit.l1"], 2);
    }

    /// Storm test: writers (`put`/`tick`/`evict_older_than`) race readers
    /// (`get`/`has`/`with_row`) across stripes; afterwards `len()`
    /// bookkeeping must agree with what is actually retrievable.
    #[test]
    fn concurrent_storm_keeps_len_consistent() {
        const NODES: usize = 512;
        const WRITERS: usize = 4;
        const READERS: usize = 4;
        let store = Arc::new(FeatureStore::new(NODES, 2));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut x = (w as u64 + 1) * 0x9e37_79b9;
                    for i in 0..4000u32 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let node = (x >> 33) as usize % NODES;
                        let level = 1 + (x as usize & 1);
                        store.put(level, node, &[i as f32, w as f32]).unwrap();
                        if i % 64 == 0 {
                            store.tick();
                        }
                        if i % 257 == 0 {
                            store.evict_older_than(2);
                        }
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            for r in 0..READERS {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut x = (r as u64 + 101) * 0x51_7cc1;
                    while !stop.load(Ordering::Relaxed) {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let node = (x >> 33) as usize % NODES;
                        let level = 1 + (x as usize & 1);
                        if store.has(level, node) {
                            // A has/get race may miss (row evicted between the
                            // calls); the row must simply never be malformed.
                            if let Some(row) = store.get(level, node) {
                                assert_eq!(row.len(), 2);
                            }
                        }
                        store.with_row(level, node, |row| assert_eq!(row.len(), 2));
                    }
                });
            }
        });

        // Bookkeeping check: len() must equal the number of retrievable rows.
        for level in 1..=2 {
            let retrievable = (0..NODES).filter(|&v| store.has(level, v)).count();
            assert_eq!(
                store.len(level),
                retrievable,
                "len() out of sync at level {level}"
            );
        }
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let row = [1.0f32, -2.5, 3.25, 0.0];
        let base = row_checksum(&row);
        for elem in 0..row.len() {
            for bit in 0..32 {
                let mut flipped = row;
                flipped[elem] = f32::from_bits(flipped[elem].to_bits() ^ (1 << bit));
                assert_ne!(
                    row_checksum(&flipped),
                    base,
                    "flip of bit {bit} in element {elem} must change the sum"
                );
            }
        }
        assert_ne!(row_checksum(&[]), row_checksum(&[0.0]), "length is hashed");
    }

    #[test]
    fn corrupted_row_is_quarantined_not_served() {
        let store = FeatureStore::new(64, 1);
        let registry = Arc::new(MetricsRegistry::new());
        store.attach_metrics(&registry);
        store.put(1, 5, &[1.0, 2.0, 3.0]).unwrap();
        store.put(1, 6, &[4.0, 5.0, 6.0]).unwrap();
        let hit = store.inject_bit_flip(0x1234);
        assert!(hit.is_some(), "a resident row must be flipped");
        let (level, node) = hit.unwrap();
        assert_eq!(level, 1);
        // The corrupted row reads as absent (quarantined on first touch)…
        assert_eq!(store.with_row(level, node, |r| r.to_vec()), None);
        assert!(!store.has(level, node), "quarantined row is gone");
        assert_eq!(store.corruption_counts(), (1, 1));
        // …while the untouched row still serves, checksum-verified.
        let other = if node == 5 { 6 } else { 5 };
        assert!(store.with_row(1, other, |r| r.len() == 3).unwrap_or(false));
        assert_eq!(store.len(1), 1);
        // Re-putting the quarantined node serves again.
        store.put(level, node, &[9.0, 9.0, 9.0]).unwrap();
        assert_eq!(store.get(level, node), Some(vec![9.0, 9.0, 9.0]));
        if gcnp_obs::enabled() {
            let snap = registry.snapshot();
            assert_eq!(snap.counters["store.corruption.detected"], 1);
            assert_eq!(snap.counters["store.corruption.quarantined"], 1);
        }
    }

    #[test]
    fn stripe_breaker_trips_after_repeated_corruption() {
        let n = 4 * N_STRIPES;
        let store = FeatureStore::new(n, 1);
        // All rows on stripe 0, so every corruption lands there.
        let stripe0: Vec<usize> = (0..4).map(|i| i * N_STRIPES).collect();
        for &v in &stripe0 {
            store.put(1, v, &[v as f32, 1.0]).unwrap();
        }
        for round in 0..STRIPE_BREAKER_THRESHOLD {
            let (_, node) = store.inject_bit_flip(round as u64 * 977).unwrap();
            assert_eq!(store.with_row(1, node, |r| r.len()), None);
        }
        assert_eq!(store.bypassed_stripes(), 1, "stripe 0's breaker is open");
        // The breaker bypasses even healthy rows on the bad stripe…
        let survivor = stripe0
            .iter()
            .copied()
            .find(|&v| store.len(1) > 0 && store.get(1, v).is_none());
        assert!(survivor.is_some() || store.len(1) == 0);
        for &v in &stripe0 {
            assert!(!store.has(1, v), "bypassed stripe reads as absent");
            assert_eq!(store.with_row(1, v, |r| r.len()), None);
        }
        // …and other stripes are unaffected.
        store.put(1, 1, &[7.0]).unwrap();
        assert!(store.has(1, 1));
        assert_eq!(
            store.corruption_counts(),
            (
                u64::from(STRIPE_BREAKER_THRESHOLD),
                u64::from(STRIPE_BREAKER_THRESHOLD)
            )
        );
    }

    #[test]
    fn bit_flip_on_empty_store_is_a_noop() {
        let store = FeatureStore::new(8, 1);
        assert_eq!(store.inject_bit_flip(42), None);
        assert_eq!(store.corruption_counts(), (0, 0));
    }
}
