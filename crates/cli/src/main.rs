//! The `gcnp` command-line tool. See crate docs / `gcnp help`.

use gcnp_cli::args::Args;
use gcnp_cli::commands;

const USAGE: &str = "\
gcnp — channel-pruned GNN inference (VLDB'21 reproduction)

USAGE: gcnp <command> [--option value | --switch]...

COMMANDS
  generate  --dataset <name> [--scale f] [--seed n] --out <file>
            synthesize a benchmark graph (flickr-sim, arxiv-sim, reddit-sim,
            yelp-sim, products-sim, yelpchi-sim)
  train     --data <file> [--hidden n] [--steps n] [--lr f] --out <file>
            GraphSAINT-train the reference 2-layer GraphSAGE
  prune     --data <file> --model <file> [--budget f] [--scheme full|batched]
            [--method lasso|maxres|random] [--retrain] --out <file>
            LASSO channel pruning (the paper's method)
  quantize  --model <file> --out <file>
            freeze weights to int8 for edge deployment
  eval      --data <file> --model <file> [--batched [--store] [--batch n]]
            [--quantized]
            test-set F1 + cost metrics under either inference scenario
  serve     --data <file> --model <file> [--rate f] [--requests n]
            [--max-batch n] [--max-wait-ms f] [--store] [--workers n]
            [--deadline-ms f] [--queue-cap n] [--retry-cap n]
            [--faults spec] [--ladder]
            simulate real-time serving; reports latency percentiles plus
            shed/recovery accounting (--workers > 1: multi-worker throughput
            mode with panic recovery; --deadline-ms/--queue-cap: shed stale
            or over-capacity requests; --ladder: degrade through pruned
            model tiers under load; --faults e.g.
            \"panics=3,stragglers=5,horizon=40,seed=7\": deterministic chaos)
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{USAGE}");
        return;
    }
    let result = Args::parse(argv).and_then(|args| commands::run(&args));
    match result {
        Ok(msg) => println!("{msg}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
