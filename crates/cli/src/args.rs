//! A minimal `--flag value` argument parser (the workspace's dependency
//! policy keeps `clap` out; see DESIGN.md).

use std::collections::BTreeMap;

/// Parsed command line: one subcommand plus `--key value` / `--switch`
/// options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// Grammar: `<command> (--key value | --switch)*`. A `--key` followed by
    /// another `--…` token or end of input is a switch.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or("missing subcommand")?;
        if command.starts_with("--") {
            return Err(format!("expected subcommand, got option {command}"));
        }
        let mut args = Args {
            command,
            ..Default::default()
        };
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {tok}"))?
                .to_string();
            if key.is_empty() {
                return Err("empty option name".into());
            }
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = it.next().unwrap();
                    args.options.insert(key, value);
                }
                _ => args.switches.push(key),
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Optional typed option: `Ok(None)` when absent, `Err` when present but
    /// unparseable (for flags like `--deadline-ms` whose absence means
    /// "feature off" rather than a default value).
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Boolean switch.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn full_grammar() {
        let a = parse("train --data d.json --steps 100 --verbose --lr 0.01").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("data"), Some("d.json"));
        assert_eq!(a.get_or::<usize>("steps", 0).unwrap(), 100);
        assert_eq!(a.get_or::<f32>("lr", 0.0).unwrap(), 0.01);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("eval --model m.json").unwrap();
        assert_eq!(a.get_or::<usize>("batch", 512).unwrap(), 512);
        assert!(a.require("model").is_ok());
        assert!(a.require("data").is_err());
    }

    #[test]
    fn optional_typed_option() {
        let a = parse("serve --deadline-ms 5").unwrap();
        assert_eq!(a.get_opt::<f64>("deadline-ms").unwrap(), Some(5.0));
        assert_eq!(a.get_opt::<usize>("queue-cap").unwrap(), None);
        assert!(parse("serve --deadline-ms soon")
            .unwrap()
            .get_opt::<f64>("deadline-ms")
            .is_err());
    }

    #[test]
    fn trailing_switch() {
        let a = parse("prune --retrain").unwrap();
        assert!(a.has("retrain"));
    }

    #[test]
    fn rejects_option_first() {
        assert!(parse("--data d.json").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn invalid_number_reported() {
        let a = parse("train --steps abc").unwrap();
        assert!(a.get_or::<usize>("steps", 1).is_err());
    }
}
