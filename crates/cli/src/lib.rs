//! # gcnp-cli
//!
//! Library backing the `gcnp` binary: a tiny dependency-free argument
//! parser ([`args::Args`]) and one function per subcommand ([`commands`]).
//! Everything operates on JSON artifacts (datasets, models) so the whole
//! train → prune → quantize → serve pipeline can be scripted:
//!
//! ```sh
//! gcnp generate --dataset reddit-sim --scale 0.1 --out data.json
//! gcnp train    --data data.json --hidden 128 --steps 150 --out ref.json
//! gcnp prune    --data data.json --model ref.json --budget 0.25 \
//!               --scheme batched --retrain --out pruned.json
//! gcnp eval     --data data.json --model pruned.json --batched --store
//! gcnp serve    --data data.json --model pruned.json --rate 500
//! ```

pub mod args;
pub mod commands;
