//! Subcommand implementations. Each takes parsed [`Args`] and returns a
//! human-readable summary (printed by `main`) or an error string.

use crate::args::Args;
use gcnp_core::{prune_model, PruneMethod, PrunerConfig, Scheme};
use gcnp_datasets::{oversample, parse_spam_factor, Dataset, DatasetKind, Partition};
use gcnp_infer::{
    format_stage_table, serve_multi, serve_sharded, simulate_tiered, stage_breakdown,
    BatchedEngine, EngineMetrics, FaultPlan, FeatureStore, FullEngine, LadderPolicy, PipelineMode,
    Precision, QuantizedGnn, ServingConfig, ShardedStore, StorePolicy,
};
use gcnp_models::{zoo, GnnModel, Metrics, TrainConfig, Trainer};
use gcnp_obs::MetricsRegistry;
use gcnp_sparse::Normalization;
use gcnp_tensor::Matrix;
use std::fs;
use std::sync::Arc;

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse dataset {path}: {e}"))
}

fn load_model(path: &str) -> Result<GnnModel, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse model {path}: {e}"))
}

fn save<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let json = serde_json::to_string(value).map_err(|e| e.to_string())?;
    fs::write(path, json).map_err(|e| format!("write {path}: {e}"))
}

fn dataset_kind(name: &str) -> Result<DatasetKind, String> {
    DatasetKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown dataset {name}; available: {}",
                DatasetKind::ALL.map(|k| k.name()).join(", ")
            )
        })
}

/// `gcnp generate --dataset <name> [--scale f] [--seed n] [--spam-factor n]
///  --out file`
///
/// `--spam-factor n` over-samples the generated graph n× with fresh
/// timestamps (the fig6 spam-stream scaling knob) and shares its parser —
/// and therefore its error messages — with `GCNP_SPAM_FACTOR`.
pub fn generate(args: &Args) -> Result<String, String> {
    let kind = dataset_kind(args.require("dataset")?)?;
    let scale: f64 = args.get_or("scale", 1.0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = args.require("out")?;
    let mut data = kind.generate_scaled(scale, seed);
    if let Some(spec) = args.get("spam-factor") {
        let factor = parse_spam_factor(spec).map_err(|e| format!("--spam-factor: {e}"))?;
        data = oversample(&data, factor, seed);
    }
    save(out, &data)?;
    Ok(format!(
        "wrote {} ({} nodes, {} edges, {} attrs, {} classes) to {out}",
        data.name,
        data.n_nodes(),
        data.adj.nnz(),
        data.attr_dim(),
        data.n_classes()
    ))
}

/// `gcnp train --data file [--hidden n] [--steps n] [--lr f] [--seed n] --out file`
pub fn train(args: &Args) -> Result<String, String> {
    let data = load_dataset(args.require("data")?)?;
    let hidden: usize = args.get_or("hidden", 128)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let cfg = TrainConfig {
        steps: args.get_or("steps", 200)?,
        lr: args.get_or("lr", 0.01)?,
        eval_every: args.get_or("eval-every", 15)?,
        patience: args.get_or("patience", 5)?,
        seed,
        ..Default::default()
    };
    let out = args.require("out")?;
    let mut model = zoo::graphsage(data.attr_dim(), hidden, data.n_classes(), seed);
    let stats = Trainer::train_saint(&mut model, &data, &cfg);
    save(out, &model)?;
    Ok(format!(
        "trained GraphSAGE({hidden}) for {} steps in {:.1}s, val F1 {:.3}; model -> {out}",
        stats.steps_run, stats.seconds, stats.best_val_f1
    ))
}

/// `gcnp prune --data file --model file --budget f [--scheme full|batched]
///  [--method lasso|maxres|random] [--retrain] --out file`
pub fn prune(args: &Args) -> Result<String, String> {
    let data = load_dataset(args.require("data")?)?;
    let model = load_model(args.require("model")?)?;
    let budget: f32 = args.get_or("budget", 0.25)?;
    let scheme = match args.get("scheme").unwrap_or("full") {
        "full" => Scheme::FullInference,
        "batched" => Scheme::BatchedInference,
        other => return Err(format!("unknown scheme {other} (full|batched)")),
    };
    let method = match args.get("method").unwrap_or("lasso") {
        "lasso" => PruneMethod::Lasso,
        "maxres" => PruneMethod::MaxResponse,
        "random" => PruneMethod::Random,
        other => return Err(format!("unknown method {other} (lasso|maxres|random)")),
    };
    let out = args.require("out")?;
    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let cfg = PrunerConfig {
        method,
        seed: args.get_or("seed", 0)?,
        ..Default::default()
    };
    let (mut pruned, report) = prune_model(&model, &tadj, &tx, budget, scheme, &cfg);
    let mut msg = format!(
        "pruned {:?}/{:?} @ budget {budget}: {} -> {} weights in {:.1}s",
        scheme, method, report.weights_before, report.weights_after, report.seconds
    );
    if args.has("retrain") {
        let tcfg = TrainConfig {
            seed: args.get_or("seed", 0)?,
            ..Default::default()
        };
        let stats = Trainer::train_saint(&mut pruned, &data, &tcfg);
        msg.push_str(&format!(
            "; retrained to val F1 {:.3} in {:.1}s",
            stats.best_val_f1, stats.seconds
        ));
    }
    save(out, &pruned)?;
    msg.push_str(&format!("; model -> {out}"));
    Ok(msg)
}

/// `gcnp quantize --model file --out file`
pub fn quantize(args: &Args) -> Result<String, String> {
    let model = load_model(args.require("model")?)?;
    let out = args.require("out")?;
    let q = QuantizedGnn::from_model(&model);
    save(out, &q)?;
    Ok(format!(
        "quantized to int8: {} weight bytes ({} f32); model -> {out}",
        q.weight_bytes(),
        model.n_weights() * 4
    ))
}

/// `gcnp eval --data file --model file [--batched] [--store] [--batch n]
///  [--quantized]`
pub fn eval(args: &Args) -> Result<String, String> {
    let data = load_dataset(args.require("data")?)?;
    let model_path = args.require("model")?;
    let adj = data.adj.normalized(Normalization::Row);
    if args.has("quantized") {
        let text = fs::read_to_string(model_path).map_err(|e| e.to_string())?;
        let q: QuantizedGnn = serde_json::from_str(&text).map_err(|e| e.to_string())?;
        let logits = q.forward_full(Some(&adj), &data.features);
        let f1 = Metrics::f1_micro_full(&logits, &data.labels, &data.test);
        return Ok(format!("quantized full inference: test F1 {f1:.3}"));
    }
    let model = load_model(model_path)?;
    if !args.has("batched") {
        let engine = FullEngine::new(&model, Some(&adj));
        let res = engine.run(&data.features, 1, 3);
        let f1 = Metrics::f1_micro_full(&res.logits, &data.labels, &data.test);
        return Ok(format!(
            "full inference: test F1 {f1:.3}, {:.0} kMACs/node, {:.1} MB, {:.2} kN/s",
            res.kmacs_per_node,
            res.memory_bytes as f64 / 1e6,
            res.throughput / 1e3
        ));
    }
    // Batched path.
    let store_holder;
    let store = if args.has("store") {
        let engine = FullEngine::new(&model, Some(&adj));
        let hs = engine.hidden(&data.features);
        let s = FeatureStore::new(data.n_nodes(), model.n_layers() - 1);
        let mut offline: Vec<usize> = data.train.iter().chain(&data.val).copied().collect();
        offline.sort_unstable();
        for level in 1..model.n_layers() {
            s.put_rows(level, &offline, &hs[level - 1].gather_rows(&offline))
                .map_err(|e| e.to_string())?;
        }
        store_holder = s;
        Some(&store_holder)
    } else {
        None
    };
    let batch: usize = args.get_or("batch", 512)?;
    let mut engine = BatchedEngine::new(
        &model,
        &data.adj,
        &data.features,
        vec![None, Some(args.get_or("cap", 32)?)],
        store,
        if store.is_some() {
            StorePolicy::Roots
        } else {
            StorePolicy::None
        },
        args.get_or("seed", 0)?,
    );
    let mut lat = Vec::new();
    let mut macs = 0u64;
    let mut preds: Vec<(usize, Vec<f32>)> = Vec::new();
    for chunk in data.test.chunks(batch) {
        let res = engine.infer(chunk);
        lat.push(res.seconds * 1e3);
        macs += res.macs;
        for (i, &t) in res.targets.iter().enumerate() {
            preds.push((t, res.logits.row(i).to_vec()));
        }
    }
    let idx: Vec<usize> = preds.iter().map(|(t, _)| *t).collect();
    let mut logits = Matrix::zeros(preds.len(), data.n_classes());
    for (r, (_, row)) in preds.iter().enumerate() {
        logits.row_mut(r).copy_from_slice(row);
    }
    let f1 = Metrics::f1_micro(&logits, &data.labels, &idx);
    lat.sort_by(f64::total_cmp);
    let median_ms = lat.get(lat.len() / 2).copied().unwrap_or(0.0);
    Ok(format!(
        "batched inference (batch {batch}{}): test F1 {f1:.3}, {:.0} kMACs/target, median {:.1} ms/batch",
        if store.is_some() { ", w/ store" } else { "" },
        macs as f64 / data.test.len() as f64 / 1e3,
        median_ms
    ))
}

/// Persist a metrics snapshot: JSON exposition to `path`, Prometheus text
/// to `path.prom`. Returns the epilogue appended to the serve summary
/// (file locations plus the engine stage-breakdown table, when any stage
/// histograms recorded samples).
fn write_metrics(path: &str, registry: &Arc<MetricsRegistry>) -> Result<String, String> {
    let snap = registry.snapshot();
    fs::write(path, snap.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    let prom = format!("{path}.prom");
    fs::write(&prom, snap.to_prometheus()).map_err(|e| format!("write {prom}: {e}"))?;
    let stages = stage_breakdown(&snap);
    let mut msg = format!("\nmetrics -> {path} (+ {prom})");
    if !stages.is_empty() {
        msg.push('\n');
        msg.push_str(&format_stage_table(&stages));
    }
    Ok(msg)
}

/// `gcnp serve --data file --model file [--rate f] [--requests n]
///  [--max-batch n] [--max-wait-ms f] [--store] [--workers n]
///  [--deadline-ms f] [--queue-cap n] [--retry-cap n] [--faults spec]
///  [--watchdog-ms f] [--hedge k] [--ladder] [--shards n]
///  [--pipeline sequential|pipelined] [--pace] [--metrics-out file]`
///
/// With `--workers n` (n > 1) the request trace is drained by `n` engine
/// replicas sharing one feature store (throughput mode, no latency
/// percentiles); worker panics are recovered and counted. `--faults`
/// injects a deterministic chaos schedule (see
/// [`gcnp_infer::FaultPlan::parse`]), `--deadline-ms`/`--queue-cap` turn on
/// deadline and admission shedding, and `--ladder` (single-worker) serves
/// through a full → pruned-2x → pruned-4x → quantized degradation ladder
/// (the bottom rung re-runs the 4x-pruned weights through the blocked int8
/// kernel, ≈16x smaller weight memory than the full model).
/// `--metrics-out file` attaches a `gcnp-obs` registry to the engines and
/// feature store, writes the end-of-run snapshot as JSON to `file` and
/// Prometheus text to `file.prom`, and appends a per-stage engine timing
/// table to the summary.
///
/// `--watchdog-ms f` arms the supervision watchdog (a batch busy longer
/// than `f` ms is stolen, requeued, and its stage pair respawned) and
/// `--hedge k` arms hedged re-execution (a batch busy past `k ×` the EWMA
/// compute estimate is speculatively duplicated; first completion wins) —
/// both are multi-worker features and ignored by single-worker simulation.
///
/// `--shards n` (n > 1, mutually exclusive with `--workers`) hash-partitions
/// the graph into `n` shards (plus two greedy edge-cut refinement passes),
/// gives each shard its own striped feature-store slice and serving worker,
/// and routes every request to its target's owner shard via `serve_sharded`.
/// With `--store` the offline pre-warm rows are routed to their owner
/// shards; with `--metrics-out` the snapshot includes the shard-router
/// traffic (`shard.remote.*`) and per-shard residency gauges
/// (`store.shard{i}.resident_rows`).
///
/// Multi-worker runs default to the two-stage **pipelined** executor
/// (per-worker gather/GEMM overlap); `--pipeline sequential` selects the
/// one-thread-per-worker escape hatch for A/B comparison, and `--pace`
/// replays the arrival trace in real time so the reported percentiles are
/// wall-clock meaningful.
pub fn serve(args: &Args) -> Result<String, String> {
    // Validate the chaos spec before any file I/O so typos fail instantly.
    let faults = match args.get("faults") {
        None => None,
        Some(spec) => Some(
            FaultPlan::parse(spec)
                .and_then(|p| p.build())
                .map_err(|e| e.to_string())?,
        ),
    };
    let data = load_dataset(args.require("data")?)?;
    let model = load_model(args.require("model")?)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let shards: usize = args.get_or("shards", 1)?;
    // One registry shared by every engine replica / tier and the store.
    let metrics = args
        .get("metrics-out")
        .map(|p| (p.to_string(), Arc::new(MetricsRegistry::new())));
    let store_holder;
    let store = if args.has("store") && shards <= 1 {
        let adj = data.adj.normalized(Normalization::Row);
        let engine = FullEngine::new(&model, Some(&adj));
        let hs = engine.hidden(&data.features);
        let s = FeatureStore::new(data.n_nodes(), model.n_layers() - 1);
        let mut offline: Vec<usize> = data.train.iter().chain(&data.val).copied().collect();
        offline.sort_unstable();
        for level in 1..model.n_layers() {
            s.put_rows(level, &offline, &hs[level - 1].gather_rows(&offline))
                .map_err(|e| e.to_string())?;
        }
        store_holder = s;
        Some(&store_holder)
    } else {
        None
    };
    if let (Some((_, reg)), Some(s)) = (&metrics, store) {
        s.attach_metrics(reg);
    }
    let pipeline = match args.get("pipeline").unwrap_or("pipelined") {
        "sequential" => PipelineMode::Sequential,
        "pipelined" => PipelineMode::Pipelined,
        other => {
            return Err(format!(
                "unknown --pipeline mode {other}; expected sequential or pipelined"
            ))
        }
    };
    let cfg = ServingConfig {
        arrival_rate: args.get_or("rate", 500.0)?,
        max_batch: args.get_or("max-batch", 64)?,
        max_wait: args.get_or::<f64>("max-wait-ms", 20.0)? / 1e3,
        n_requests: args.get_or("requests", 1000)?,
        seed,
        deadline: args.get_opt::<f64>("deadline-ms")?.map(|ms| ms / 1e3),
        queue_cap: args.get_opt("queue-cap")?,
        retry_cap: args.get_or("retry-cap", 3)?,
        pipeline,
        pace: args.has("pace"),
        watchdog: args.get_opt::<f64>("watchdog-ms")?.map(|ms| ms / 1e3),
        hedge: args.get_opt("hedge")?,
        ..Default::default()
    };
    let policy = if store.is_some() {
        StorePolicy::Roots
    } else {
        StorePolicy::None
    };
    let workers: usize = args.get_or("workers", 1)?;
    if shards > 1 {
        if workers > 1 {
            return Err(
                "--shards and --workers are mutually exclusive: each shard owns one worker".into(),
            );
        }
        let mut part = Partition::hash(data.n_nodes(), shards, seed);
        let moved = part.refine_greedy(&data.adj, 2);
        let sharded = ShardedStore::new(&part.assign, shards, model.n_layers() - 1);
        if let Some((_, reg)) = &metrics {
            sharded.attach_metrics(reg);
        }
        let policy = if args.has("store") {
            // Same offline pre-warm as the single-store path, routed to
            // each row's owner shard.
            let adj = data.adj.normalized(Normalization::Row);
            let engine = FullEngine::new(&model, Some(&adj));
            let hs = engine.hidden(&data.features);
            let mut offline: Vec<usize> = data.train.iter().chain(&data.val).copied().collect();
            offline.sort_unstable();
            for level in 1..model.n_layers() {
                for &v in &offline {
                    sharded
                        .put(level, v, hs[level - 1].row(v))
                        .map_err(|e| e.to_string())?;
                }
            }
            StorePolicy::Roots
        } else {
            StorePolicy::None
        };
        let mut engines: Vec<BatchedEngine<'_>> = (0..shards)
            .map(|k| {
                let mut e = BatchedEngine::new_sharded(
                    &model,
                    &data.adj,
                    &data.features,
                    vec![None, Some(32)],
                    &sharded,
                    k,
                    policy,
                    seed ^ k as u64,
                );
                if let Some(inj) = &faults {
                    e.set_faults(Arc::clone(inj));
                }
                if let Some((_, reg)) = &metrics {
                    e.set_metrics(EngineMetrics::new(reg));
                }
                e
            })
            .collect();
        let rep = serve_sharded(&mut engines, &part.assign, &data.test, &cfg)
            .map_err(|e| e.to_string())?;
        let mut msg = format!(
            "served {}/{} requests in {} batches (mean size {:.1}) on {} shards ({} nodes moved by refinement, edge cut {}): {:.0} req/s wall-clock, p99 {:.1} ms, occupancy {:.2}",
            rep.served,
            rep.n_requests,
            rep.n_batches,
            rep.mean_batch_size,
            shards,
            moved,
            part.edge_cut(&data.adj),
            rep.throughput,
            rep.p99_ms,
            rep.pipeline_occupancy,
        );
        if rep.shed + rep.recoveries + rep.failures + rep.retries > 0 {
            msg.push_str(&format!(
                "; shed {}, recovered {} panics ({} workers lost), {} clean failures, {} retries",
                rep.shed, rep.recoveries, rep.workers_lost, rep.failures, rep.retries
            ));
        }
        if let Some((path, reg)) = &metrics {
            sharded.refresh_gauges();
            msg.push_str(&write_metrics(path, reg)?);
        }
        return Ok(msg);
    }
    if workers > 1 {
        let mut engines: Vec<BatchedEngine<'_>> = (0..workers)
            .map(|w| {
                let mut e = BatchedEngine::new(
                    &model,
                    &data.adj,
                    &data.features,
                    vec![None, Some(32)],
                    store,
                    policy,
                    seed ^ w as u64,
                );
                if let Some(inj) = &faults {
                    e.set_faults(Arc::clone(inj));
                }
                if let Some((_, reg)) = &metrics {
                    e.set_metrics(EngineMetrics::new(reg));
                }
                e
            })
            .collect();
        let rep = serve_multi(&mut engines, &data.test, &cfg).map_err(|e| e.to_string())?;
        let mut msg = format!(
            "served {}/{} requests in {} batches (mean size {:.1}) on {} {:?} workers: {:.0} req/s wall-clock, {:.0} req/s compute-bound, p99 {:.1} ms, occupancy {:.2}",
            rep.served,
            rep.n_requests,
            rep.n_batches,
            rep.mean_batch_size,
            rep.n_workers,
            cfg.pipeline,
            rep.throughput,
            rep.compute_throughput,
            rep.p99_ms,
            rep.pipeline_occupancy
        );
        if rep.shed + rep.recoveries + rep.failures + rep.retries > 0 {
            msg.push_str(&format!(
                "; shed {}, recovered {} panics ({} workers lost), {} clean failures, {} retries",
                rep.shed, rep.recoveries, rep.workers_lost, rep.failures, rep.retries
            ));
        }
        if rep.watchdog_restarts + rep.hedges_fired > 0 {
            msg.push_str(&format!(
                "; supervisor: {} watchdog restarts, {} hedges ({} won, {} wasted)",
                rep.watchdog_restarts, rep.hedges_fired, rep.hedges_won, rep.hedges_wasted
            ));
        }
        if let Some((path, reg)) = &metrics {
            msg.push_str(&write_metrics(path, reg)?);
        }
        return Ok(msg);
    }
    // Single worker: optionally build the degradation ladder from
    // successively heavier batched-scheme pruning of the served model.
    let tier_models: Vec<GnnModel> = if args.has("ladder") {
        let (tadj, tnodes) = data.train_adj();
        let tadj = tadj.normalized(Normalization::Row);
        let tx = data.features.gather_rows(&tnodes);
        let pcfg = PrunerConfig {
            beta_epochs: 10,
            w_epochs: 10,
            batch_size: 128,
            seed,
            ..Default::default()
        };
        [0.5f32, 0.25]
            .iter()
            .map(|&b| prune_model(&model, &tadj, &tx, b, Scheme::BatchedInference, &pcfg).0)
            .collect()
    } else {
        vec![]
    };
    // Rung specs: the f32 rungs, then (with --ladder) the quantized floor —
    // the heaviest-pruned model's weights re-run as int8, compounding the
    // 4x channel pruning with 4x weight compression.
    let mut specs: Vec<(&GnnModel, Precision)> = std::iter::once((&model, Precision::F32))
        .chain(tier_models.iter().map(|m| (m, Precision::F32)))
        .collect();
    if args.has("ladder") {
        specs.push((tier_models.last().unwrap_or(&model), Precision::Int8));
    }
    let mut tiers: Vec<BatchedEngine<'_>> = specs
        .into_iter()
        .map(|(m, precision)| {
            let mut e = BatchedEngine::new_with_precision(
                m,
                &data.adj,
                &data.features,
                vec![None, Some(32)],
                store,
                policy,
                seed,
                precision,
            );
            if let Some(inj) = &faults {
                e.set_faults(Arc::clone(inj));
            }
            if let Some((_, reg)) = &metrics {
                e.set_metrics(EngineMetrics::new(reg));
            }
            e
        })
        .collect();
    let ladder = LadderPolicy::default();
    let rep = simulate_tiered(
        &mut tiers,
        &data.test,
        &cfg,
        args.has("ladder").then_some(&ladder),
    )
    .map_err(|e| e.to_string())?;
    let mut msg = format!(
        "served {}/{} requests in {} batches (mean size {:.1}): p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, max {:.1} ms, {:.0} req/s wall-clock ({:.0} req/s compute-bound)",
        rep.served,
        rep.n_requests,
        rep.n_batches,
        rep.mean_batch_size,
        rep.p50_ms,
        rep.p95_ms,
        rep.p99_ms,
        rep.max_ms,
        rep.throughput,
        rep.compute_throughput
    );
    if rep.shed_queue + rep.shed_deadline + rep.deadline_misses > 0 {
        msg.push_str(&format!(
            "; shed {} at admission + {} past deadline, {} served late",
            rep.shed_queue, rep.shed_deadline, rep.deadline_misses
        ));
    }
    if rep.tier_served.len() > 1 {
        msg.push_str(&format!(
            "; ladder traffic {:?} across {} switches",
            rep.tier_served, rep.tier_switches
        ));
    }
    if let Some((path, reg)) = &metrics {
        msg.push_str(&write_metrics(path, reg)?);
    }
    Ok(msg)
}

/// Dispatch a parsed command line.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "generate" => generate(args),
        "train" => train(args),
        "prune" => prune(args),
        "quantize" => quantize(args),
        "eval" => eval(args),
        "serve" => serve(args),
        other => Err(format!(
            "unknown command {other}; available: generate, train, prune, quantize, eval, serve"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn pipeline_generate_train_prune_eval_serve() {
        let dir = std::env::temp_dir().join("gcnp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.join("d.json").display().to_string();
        let m = dir.join("m.json").display().to_string();
        let p = dir.join("p.json").display().to_string();
        let q = dir.join("q.json").display().to_string();

        let msg = run(&parse(&format!(
            "generate --dataset yelpchi-sim --scale 0.05 --seed 1 --out {d}"
        )))
        .unwrap();
        assert!(msg.contains("yelpchi-sim"));

        let msg = run(&parse(&format!(
            "train --data {d} --hidden 16 --steps 30 --eval-every 10 --out {m}"
        )))
        .unwrap();
        assert!(msg.contains("val F1"));

        let msg = run(&parse(&format!(
            "prune --data {d} --model {m} --budget 0.5 --scheme batched --out {p}"
        )))
        .unwrap();
        assert!(msg.contains("weights"));

        let msg = run(&parse(&format!("eval --data {d} --model {p}"))).unwrap();
        assert!(msg.contains("test F1"));
        let msg = run(&parse(&format!(
            "eval --data {d} --model {p} --batched --store"
        )))
        .unwrap();
        assert!(msg.contains("w/ store"));

        let msg = run(&parse(&format!("quantize --model {p} --out {q}"))).unwrap();
        assert!(msg.contains("int8"));
        let msg = run(&parse(&format!("eval --data {d} --model {q} --quantized"))).unwrap();
        assert!(msg.contains("quantized"));

        let mx = dir.join("metrics.json").display().to_string();
        let msg = run(&parse(&format!(
            "serve --data {d} --model {p} --requests 50 --rate 200 --store --metrics-out {mx}"
        )))
        .unwrap();
        assert!(msg.contains("p99"));
        assert!(msg.contains("metrics ->"), "{msg}");
        let json = std::fs::read_to_string(&mx).unwrap();
        let prom = std::fs::read_to_string(format!("{mx}.prom")).unwrap();
        if gcnp_obs::enabled() {
            // The snapshot carries engine stage timings, store counters and
            // serving counters; the summary ends with the stage table.
            assert!(json.contains("\"engine.batches\""), "{json}");
            assert!(json.contains("\"engine.stage.spmm.seconds\""), "{json}");
            assert!(json.contains("\"serving.served\""), "{json}");
            assert!(json.contains("\"store.hit.l1\""), "{json}");
            assert!(prom.contains("engine_batch_seconds_bucket"), "{prom}");
            assert!(prom.contains("serving_served"), "{prom}");
            assert!(msg.contains("spmm"), "{msg}");
        }

        // Overload with a deadline and a bounded queue: the report accounts
        // for shedding instead of pretending everything was served on time.
        let msg = run(&parse(&format!(
            "serve --data {d} --model {p} --requests 60 --rate 50000 --max-batch 8 \
             --deadline-ms 5 --queue-cap 24"
        )))
        .unwrap();
        assert!(msg.contains("p99"));

        // Chaos flags: one injected panic on two workers is recovered, not
        // fatal (retry cap covers it, so every request is still served).
        let mw = dir.join("metrics_multi.json").display().to_string();
        let msg = run(&parse(&format!(
            "serve --data {d} --model {p} --requests 60 --workers 2 \
             --faults panics=1,stragglers=2,horizon=6,seed=3 --metrics-out {mw}"
        )))
        .unwrap();
        assert!(msg.contains("served 60/60"), "{msg}");
        assert!(msg.contains("recovered 1 panics"), "{msg}");
        let json = std::fs::read_to_string(&mw).unwrap();
        if gcnp_obs::enabled() {
            assert!(json.contains("\"serving.recoveries\""), "{json}");
        }

        // Supervision flags: a 400 ms stage stall under a 50 ms watchdog is
        // stolen and re-served — the summary reports the restart and the
        // run stays lossless.
        let msg = run(&parse(&format!(
            "serve --data {d} --model {p} --requests 60 --workers 2 \
             --watchdog-ms 50 --hedge 8 \
             --faults stalls=1,stall-ms=400,horizon=1,seed=5"
        )))
        .unwrap();
        assert!(msg.contains("served 60/60"), "{msg}");
        assert!(msg.contains("watchdog restarts"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ladder_serve_reports_tier_traffic() {
        let dir = std::env::temp_dir().join("gcnp_cli_ladder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.join("d.json").display().to_string();
        let m = dir.join("m.json").display().to_string();
        run(&parse(&format!(
            "generate --dataset yelpchi-sim --scale 0.05 --seed 2 --out {d}"
        )))
        .unwrap();
        run(&parse(&format!(
            "train --data {d} --hidden 16 --steps 20 --eval-every 10 --out {m}"
        )))
        .unwrap();
        let msg = run(&parse(&format!(
            "serve --data {d} --model {m} --requests 60 --rate 20000 --max-batch 8 --ladder"
        )))
        .unwrap();
        assert!(msg.contains("ladder traffic"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_serve_and_spam_factor_flags() {
        let dir = std::env::temp_dir().join("gcnp_cli_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.join("d.json").display().to_string();
        let m = dir.join("m.json").display().to_string();
        let msg = run(&parse(&format!(
            "generate --dataset yelpchi-sim --scale 0.05 --spam-factor 2 --seed 3 --out {d}"
        )))
        .unwrap();
        assert!(msg.contains("400 nodes"), "oversampled 2x: {msg}");
        run(&parse(&format!(
            "train --data {d} --hidden 16 --steps 20 --eval-every 10 --out {m}"
        )))
        .unwrap();

        let mx = dir.join("metrics_sharded.json").display().to_string();
        let msg = run(&parse(&format!(
            "serve --data {d} --model {m} --requests 60 --rate 20000 --max-batch 8 \
             --shards 2 --store --metrics-out {mx}"
        )))
        .unwrap();
        assert!(msg.contains("served 60/60"), "{msg}");
        assert!(msg.contains("on 2 shards"), "{msg}");
        if gcnp_obs::enabled() {
            let json = std::fs::read_to_string(&mx).unwrap();
            assert!(json.contains("\"shard.remote.requests\""), "{json}");
            assert!(json.contains("\"store.shard0.resident_rows\""), "{json}");
            assert!(json.contains("\"store.shard1.resident_rows\""), "{json}");
        }

        // Typed flag errors: a spam-factor typo aborts instead of silently
        // generating the un-scaled graph, and shards/workers don't compose.
        assert!(run(&parse(&format!(
            "generate --dataset yelpchi-sim --spam-factor 1O0 --out {d}"
        )))
        .is_err());
        assert!(run(&parse(&format!(
            "serve --data {d} --model {m} --requests 10 --shards 2 --workers 2"
        )))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_bad_inputs() {
        assert!(run(&parse("frobnicate")).is_err());
        assert!(
            run(&parse(
                "serve --data x.json --model y.json --faults frobs=1"
            ))
            .is_err(),
            "bad fault spec is rejected before any file I/O matters"
        );
        assert!(run(&parse("generate --dataset nope --out /tmp/x.json")).is_err());
        assert!(run(&parse(
            "prune --data missing.json --model also-missing.json --out /tmp/x"
        ))
        .is_err());
        assert!(run(&parse("eval --data missing.json --model missing.json")).is_err());
    }
}
