//! One GNN layer of the paper's Eq. (1), with optional channel pruning.

use gcnp_autograd::{SharedAdj, Tape, Var};
use gcnp_sparse::CsrMatrix;
use gcnp_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    /// Identity — used by output layers (logits) and by the pruning target
    /// `h′⁽ⁱ⁾` (the paper optimizes pre-activation outputs, §3.1).
    None,
}

/// How branch outputs are combined (the `‖` of Eq. 1 or an average).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombineMode {
    Concat,
    Mean,
}

/// One aggregation order `k`: output contribution `(Ãᵏ H)[:, keep] · W`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Branch {
    /// Aggregation order (0 = self features, 1 = one-hop mean, …).
    pub k: usize,
    /// Weight matrix, `keep.len() × out_dim` when pruned, else `in_dim × out_dim`.
    pub weight: Matrix,
    /// Surviving input channels (`None` = all channels). Set by the pruner.
    pub keep: Option<Vec<usize>>,
}

impl Branch {
    /// An unpruned branch.
    pub fn new(k: usize, weight: Matrix) -> Self {
        Self {
            k,
            weight,
            keep: None,
        }
    }

    /// Output width of this branch.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Number of input channels actually read.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }
}

/// One layer: a set of branches over increasing aggregation order, combined
/// and activated. Dense layers are branches with `k = 0` only (§3.3 of the
/// paper treats them as GNN layers with `K′ = K = 0`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchLayer {
    pub branches: Vec<Branch>,
    /// Optional bias, `1 × out_dim_total`.
    pub bias: Option<Matrix>,
    pub combine: CombineMode,
    pub activation: Activation,
}

impl BranchLayer {
    /// A dense (non-graph) layer: `k = 0` branch only.
    pub fn dense(weight: Matrix, bias: Option<Matrix>, activation: Activation) -> Self {
        Self {
            branches: vec![Branch::new(0, weight)],
            bias,
            combine: CombineMode::Concat,
            activation,
        }
    }

    /// Total output width.
    pub fn out_dim(&self) -> usize {
        match self.combine {
            CombineMode::Concat => self.branches.iter().map(Branch::out_dim).sum(),
            CombineMode::Mean => self.branches.first().map_or(0, Branch::out_dim),
        }
    }

    /// Largest aggregation order used by any branch.
    pub fn max_k(&self) -> usize {
        self.branches.iter().map(|b| b.k).max().unwrap_or(0)
    }

    /// True when any branch aggregates over the graph (`k ≥ 1`).
    pub fn uses_graph(&self) -> bool {
        self.max_k() >= 1
    }

    /// Plain (no-tape) forward: `input` is `h⁽ⁱ⁻¹⁾`, `adj` the normalized
    /// adjacency (`None` allowed for pure dense layers). Returns
    /// post-activation output. `pre_activation` of the same computation is
    /// available via [`BranchLayer::forward_pre`].
    pub fn forward(&self, adj: Option<&CsrMatrix>, input: &Matrix) -> Matrix {
        let pre = self.forward_pre(adj, input);
        match self.activation {
            Activation::Relu => pre.relu(),
            Activation::None => pre,
        }
    }

    /// Pre-activation forward (`h′⁽ⁱ⁾` in the paper) — the quantity the
    /// LASSO pruner regresses against.
    pub fn forward_pre(&self, adj: Option<&CsrMatrix>, input: &Matrix) -> Matrix {
        let parts = self.branch_outputs(adj, input);
        let refs: Vec<&Matrix> = parts.iter().collect();
        let mut out = match self.combine {
            CombineMode::Concat => Matrix::concat_cols_all(&refs),
            CombineMode::Mean => {
                let mut acc = parts[0].clone();
                for p in &parts[1..] {
                    acc.add_assign(p);
                }
                acc.scale(1.0 / parts.len() as f32)
            }
        };
        if let Some(b) = &self.bias {
            out = out.add_row_vector(b.row(0));
        }
        out
    }

    /// Per-branch pre-combination outputs `(Ãᵏ H)[:, keep] · Wₖ`.
    pub fn branch_outputs(&self, adj: Option<&CsrMatrix>, input: &Matrix) -> Vec<Matrix> {
        let max_k = self.max_k();
        assert!(
            max_k == 0 || adj.is_some(),
            "branch_outputs: graph layer needs adjacency"
        );
        // Progressive powers: z_k = Ã^k · input.
        let mut powers: Vec<Matrix> = Vec::with_capacity(max_k + 1);
        powers.push(input.clone());
        for _ in 0..max_k {
            let next = adj.unwrap().spmm(powers.last().unwrap());
            powers.push(next);
        }
        self.branches
            .iter()
            .map(|b| {
                let z = &powers[b.k];
                match &b.keep {
                    // Select the surviving channels before the GEMM — the
                    // source of the pruned model's speedup.
                    Some(keep) => z.select_cols(keep).matmul(&b.weight),
                    None => z.matmul(&b.weight),
                }
            })
            .collect()
    }

    /// Tape forward for training. `pvars` must contain one Var per branch
    /// weight followed by the bias Var when present, in order — as produced
    /// by [`BranchLayer::register_params`].
    pub fn forward_tape(
        &self,
        t: &mut Tape,
        adj: Option<&SharedAdj>,
        input: Var,
        pvars: &[Var],
    ) -> Var {
        assert_eq!(
            pvars.len(),
            self.n_params(),
            "forward_tape: wrong param count"
        );
        let max_k = self.max_k();
        assert!(
            max_k == 0 || adj.is_some(),
            "forward_tape: graph layer needs adjacency"
        );
        let mut powers: Vec<Var> = Vec::with_capacity(max_k + 1);
        powers.push(input);
        for _ in 0..max_k {
            let prev = *powers.last().unwrap();
            powers.push(t.spmm(adj.unwrap(), prev));
        }
        let mut parts = Vec::with_capacity(self.branches.len());
        for (b, &w) in self.branches.iter().zip(pvars) {
            let z = powers[b.k];
            let z = match &b.keep {
                Some(keep) => t.select_cols(z, keep),
                None => z,
            };
            parts.push(t.matmul(z, w));
        }
        let mut out = match self.combine {
            CombineMode::Concat => {
                if parts.len() == 1 {
                    parts[0]
                } else {
                    t.concat_cols(&parts)
                }
            }
            CombineMode::Mean => {
                let mut acc = parts[0];
                for &p in &parts[1..] {
                    acc = t.add(acc, p);
                }
                t.scale(acc, 1.0 / parts.len() as f32)
            }
        };
        if self.bias.is_some() {
            out = t.add_bias(out, pvars[self.branches.len()]);
        }
        match self.activation {
            Activation::Relu => t.relu(out),
            Activation::None => out,
        }
    }

    /// Register this layer's parameters on a tape (weights then bias).
    pub fn register_params(&self, t: &mut Tape) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .branches
            .iter()
            .map(|b| t.param(b.weight.clone()))
            .collect();
        if let Some(b) = &self.bias {
            vars.push(t.param(b.clone()));
        }
        vars
    }

    /// Number of parameter tensors (branch weights + optional bias).
    pub fn n_params(&self) -> usize {
        self.branches.len() + usize::from(self.bias.is_some())
    }

    /// Mutable references to this layer's parameters, same order as
    /// [`BranchLayer::register_params`].
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut v: Vec<&mut Matrix> = self.branches.iter_mut().map(|b| &mut b.weight).collect();
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    /// Total scalar parameter count (for model-size reporting).
    pub fn n_weights(&self) -> usize {
        self.branches.iter().map(|b| b.weight.len()).sum::<usize>()
            + self.bias.as_ref().map_or(0, Matrix::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnp_sparse::Normalization;
    use gcnp_tensor::init::seeded_rng;

    fn tiny_adj() -> CsrMatrix {
        CsrMatrix::adjacency(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).normalized(Normalization::Row)
    }

    fn sage_layer(fin: usize, fout: usize, seed: u64) -> BranchLayer {
        let mut rng = seeded_rng(seed);
        BranchLayer {
            branches: vec![
                Branch::new(0, Matrix::glorot(fin, fout, &mut rng)),
                Branch::new(1, Matrix::glorot(fin, fout, &mut rng)),
            ],
            bias: Some(Matrix::zeros(1, 2 * fout)),
            combine: CombineMode::Concat,
            activation: Activation::Relu,
        }
    }

    #[test]
    fn sage_layer_shapes() {
        let layer = sage_layer(4, 5, 1);
        let adj = tiny_adj();
        let x = Matrix::rand_uniform(3, 4, -1.0, 1.0, &mut seeded_rng(2));
        let out = layer.forward(Some(&adj), &x);
        assert_eq!(out.shape(), (3, 10));
        assert!(out.as_slice().iter().all(|&v| v >= 0.0), "post-ReLU");
    }

    #[test]
    fn dense_layer_ignores_graph() {
        let w = Matrix::eye(3);
        let layer = BranchLayer::dense(w, None, Activation::None);
        let x = Matrix::rand_uniform(2, 3, -1.0, 1.0, &mut seeded_rng(3));
        assert!(layer.forward(None, &x).approx_eq(&x, 1e-6));
        assert!(!layer.uses_graph());
    }

    #[test]
    fn tape_and_plain_forward_agree() {
        let layer = sage_layer(4, 3, 5);
        let adj = tiny_adj();
        let x = Matrix::rand_uniform(3, 4, -1.0, 1.0, &mut seeded_rng(6));
        let plain = layer.forward(Some(&adj), &x);

        let shared = SharedAdj::new(adj);
        let mut t = Tape::new();
        let xv = t.constant(x);
        let pvars = layer.register_params(&mut t);
        let out = layer.forward_tape(&mut t, Some(&shared), xv, &pvars);
        assert!(t.value(out).approx_eq(&plain, 1e-5));
    }

    #[test]
    fn pruned_branch_reads_only_kept_channels() {
        let mut layer = sage_layer(4, 3, 7);
        // Keep channels {0, 2} in branch 1 with a compacted weight.
        let w1 = layer.branches[1].weight.select_rows(&[0, 2]);
        layer.branches[1] = Branch {
            k: 1,
            weight: w1,
            keep: Some(vec![0, 2]),
        };
        let adj = tiny_adj();
        let x = Matrix::rand_uniform(3, 4, -1.0, 1.0, &mut seeded_rng(8));
        let out = layer.forward(Some(&adj), &x);
        assert_eq!(out.shape(), (3, 6));
        // Changing a pruned-away channel (1) must not change the k=1 part.
        let mut x2 = x.clone();
        for r in 0..3 {
            x2.set(r, 1, 99.0);
        }
        let out2 = layer.forward(Some(&adj), &x2);
        // columns 3..6 are the k=1 branch (k=0 branch does change).
        for r in 0..3 {
            assert_eq!(&out.row(r)[3..6], &out2.row(r)[3..6]);
        }
    }

    #[test]
    fn mean_combine_averages_branches() {
        let mut rng = seeded_rng(9);
        let w = Matrix::glorot(4, 3, &mut rng);
        let layer = BranchLayer {
            branches: vec![Branch::new(0, w.clone()), Branch::new(0, w.clone())],
            bias: None,
            combine: CombineMode::Mean,
            activation: Activation::None,
        };
        let x = Matrix::rand_uniform(3, 4, -1.0, 1.0, &mut rng);
        let out = layer.forward(None, &x);
        assert!(
            out.approx_eq(&x.matmul(&w), 1e-5),
            "mean of identical branches"
        );
        assert_eq!(layer.out_dim(), 3);
    }

    #[test]
    fn param_counts() {
        let layer = sage_layer(4, 5, 10);
        assert_eq!(layer.n_params(), 3);
        assert_eq!(layer.n_weights(), 4 * 5 * 2 + 10);
    }
}
