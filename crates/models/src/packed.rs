//! Packed-weight forward passes — the weight-pack cache.
//!
//! GEMM spends a per-call pack step laying the right-hand operand out in
//! cache-friendly panels (see `gcnp_tensor::gemm`). Model weights are
//! constant across every inference batch, so [`PackedModel`] packs each
//! branch weight **once** and the engines reuse the panels for the process
//! lifetime of the model borrow.
//!
//! Invalidation is structural, not tracked: a `PackedModel` holds `&GnnModel`
//! for its own lifetime, so the borrow checker rules out mutating (and thus
//! staling) the source weights while any pack exists. Retraining or pruning
//! a model means dropping the engines and re-packing — exactly the lifecycle
//! the serving layer already has (engines are rebuilt per deployed tier).

use gcnp_sparse::CsrMatrix;
use gcnp_tensor::{Matrix, PackedB, QuantPackedB};

use crate::layer::{Activation, Branch, BranchLayer, CombineMode};
use crate::model::GnnModel;

/// Pack one branch weight, folding the channel-pruning mask into the pack
/// step: a branch whose `keep` list is shorter than its stored weight holds
/// the **full-width masked** weight (`W` with dead input channels still
/// present), and only the kept rows are packed — pruned channels are never
/// packed, so the GEMM never multiplies them. Compacted branches (weight
/// already `keep.len()` rows, the `prune_model` output) pack as-is.
fn pack_branch(b: &Branch) -> PackedB {
    match &b.keep {
        Some(keep) if b.weight.rows() != keep.len() => PackedB::pack_rows(&b.weight, keep),
        _ => PackedB::pack(&b.weight),
    }
}

/// Int8 sibling of [`pack_branch`]: quantization scales are computed over
/// the kept rows only, so a mask-folded pack is bit-identical to packing the
/// compacted weight.
fn qpack_branch(b: &Branch) -> QuantPackedB {
    match &b.keep {
        Some(keep) if b.weight.rows() != keep.len() => QuantPackedB::pack_rows(&b.weight, keep),
        _ => QuantPackedB::pack(&b.weight),
    }
}

/// A [`GnnModel`] with every branch weight pre-packed for the GEMM fast
/// path. Forward results are identical to the plain model's (the packed
/// kernel performs the same fused multiply-add chain).
pub struct PackedModel<'m> {
    model: &'m GnnModel,
    /// `packs[layer][branch]`, parallel to `model.layers[..].branches[..]`.
    packs: Vec<Vec<PackedB>>,
}

impl<'m> PackedModel<'m> {
    /// Pack every branch weight of `model`.
    pub fn new(model: &'m GnnModel) -> Self {
        let packs = model
            .layers
            .iter()
            .map(|l| l.branches.iter().map(pack_branch).collect())
            .collect();
        Self { model, packs }
    }

    /// The source model.
    pub fn model(&self) -> &'m GnnModel {
        self.model
    }

    /// Packed weights for one layer (parallel to its `branches`).
    pub fn branch_packs(&self, layer: usize) -> &[PackedB] {
        &self.packs[layer]
    }

    /// Bytes held by all packed panels.
    pub fn packed_bytes(&self) -> usize {
        self.packs
            .iter()
            .flat_map(|l| l.iter().map(PackedB::packed_bytes))
            .sum()
    }

    /// Full-graph inference over packed weights; mirrors
    /// [`GnnModel::forward_full`].
    pub fn forward_full(&self, adj: Option<&CsrMatrix>, x: &Matrix) -> Matrix {
        self.forward_collect(adj, x)
            .pop()
            .expect("model has layers")
    }

    /// Every layer's post-activation output over packed weights; mirrors
    /// [`GnnModel::forward_collect`].
    pub fn forward_collect(&self, adj: Option<&CsrMatrix>, x: &Matrix) -> Vec<Matrix> {
        assert!(
            !self.model.layers.is_empty(),
            "forward_collect: empty model"
        );
        let mut outputs: Vec<Matrix> = Vec::with_capacity(self.model.layers.len());
        let n = self.model.layers.len();
        for (i, (layer, packs)) in self.model.layers.iter().zip(&self.packs).enumerate() {
            let input = if i == 0 {
                x.clone()
            } else if self.model.jk && i == n - 1 {
                let refs: Vec<&Matrix> = outputs.iter().collect();
                Matrix::concat_cols_all(&refs)
            } else {
                outputs[i - 1].clone()
            };
            outputs.push(layer_forward_packed(layer, packs, adj, &input));
        }
        outputs
    }
}

/// A [`GnnModel`] with every branch weight quantized to int8 and packed for
/// the blocked quantized GEMM — the weight cache behind the serving ladder's
/// `quantized` tier. Pruning masks fold into the pack exactly as in
/// [`PackedModel`]; weights occupy ≈¼ of the f32 pack.
pub struct QuantPackedModel<'m> {
    model: &'m GnnModel,
    /// `packs[layer][branch]`, parallel to `model.layers[..].branches[..]`.
    packs: Vec<Vec<QuantPackedB>>,
}

impl<'m> QuantPackedModel<'m> {
    /// Quantize and pack every branch weight of `model`.
    pub fn new(model: &'m GnnModel) -> Self {
        let packs = model
            .layers
            .iter()
            .map(|l| l.branches.iter().map(qpack_branch).collect())
            .collect();
        Self { model, packs }
    }

    /// The source model.
    pub fn model(&self) -> &'m GnnModel {
        self.model
    }

    /// Quantized packed weights for one layer (parallel to its `branches`).
    pub fn branch_packs(&self, layer: usize) -> &[QuantPackedB] {
        &self.packs[layer]
    }

    /// Bytes held by all quantized panels and scales.
    pub fn packed_bytes(&self) -> usize {
        self.packs
            .iter()
            .flat_map(|l| l.iter().map(QuantPackedB::packed_bytes))
            .sum()
    }
}

/// One layer forward over packed branch weights; arithmetic-identical to
/// [`BranchLayer::forward`].
fn layer_forward_packed(
    layer: &BranchLayer,
    packs: &[PackedB],
    adj: Option<&CsrMatrix>,
    input: &Matrix,
) -> Matrix {
    debug_assert_eq!(layer.branches.len(), packs.len());
    let max_k = layer.max_k();
    assert!(
        max_k == 0 || adj.is_some(),
        "layer_forward_packed: graph layer needs adjacency"
    );
    let mut powers: Vec<Matrix> = Vec::with_capacity(max_k + 1);
    powers.push(input.clone());
    for _ in 0..max_k {
        let next = adj.unwrap().spmm(powers.last().unwrap());
        powers.push(next);
    }
    let parts: Vec<Matrix> = layer
        .branches
        .iter()
        .zip(packs)
        .map(|(b, pb)| {
            let z = &powers[b.k];
            match &b.keep {
                Some(keep) => z.select_cols(keep).matmul_packed(pb),
                None => z.matmul_packed(pb),
            }
        })
        .collect();
    let refs: Vec<&Matrix> = parts.iter().collect();
    let mut out = match layer.combine {
        CombineMode::Concat => Matrix::concat_cols_all(&refs),
        CombineMode::Mean => {
            let mut acc = parts[0].clone();
            for p in &parts[1..] {
                acc.add_assign(p);
            }
            acc.scale(1.0 / parts.len() as f32)
        }
    };
    if let Some(b) = &layer.bias {
        out.add_row_vector_assign(b.row(0));
    }
    if layer.activation == Activation::Relu {
        out.relu_assign();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Branch;
    use crate::zoo;
    use gcnp_sparse::Normalization;
    use gcnp_tensor::init::seeded_rng;

    fn adj() -> CsrMatrix {
        CsrMatrix::adjacency(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 0)])
            .normalized(Normalization::Row)
    }

    #[test]
    fn packed_forward_matches_plain_model() {
        let model = zoo::graphsage(6, 8, 3, 11);
        let a = adj();
        let x = Matrix::rand_uniform(5, 6, -1.0, 1.0, &mut seeded_rng(12));
        let packed = PackedModel::new(&model);
        assert_eq!(
            packed.forward_full(Some(&a), &x),
            model.forward_full(Some(&a), &x),
            "packed weights must not change the forward pass"
        );
        let plain = model.forward_collect(Some(&a), &x);
        let via_pack = packed.forward_collect(Some(&a), &x);
        assert_eq!(plain.len(), via_pack.len());
        for (p, q) in plain.iter().zip(&via_pack) {
            assert_eq!(p, q);
        }
        assert!(packed.packed_bytes() > 0);
    }

    #[test]
    fn pruned_model_outputs_unchanged_by_kernel_path() {
        // Satellite pin: pruned models (keep lists + compacted weights) must
        // produce the same outputs through the blocked/packed kernels as
        // through the plain forward — zero-channel skipping now lives only in
        // the explicit `matmul_zero_skipping` path and pruning semantics come
        // from `select_cols`, not from skipping zeros inside the GEMM.
        let mut model = zoo::graphsage(6, 8, 3, 21);
        let keep = vec![0, 2, 5];
        for layer in &mut model.layers {
            for b in &mut layer.branches {
                if b.in_dim() == 6 {
                    let w = b.weight.select_rows(&keep);
                    *b = Branch {
                        k: b.k,
                        weight: w,
                        keep: Some(keep.clone()),
                    };
                }
            }
        }
        let a = adj();
        let x = Matrix::rand_uniform(5, 6, -1.0, 1.0, &mut seeded_rng(22));
        let plain = model.forward_full(Some(&a), &x);
        let packed = PackedModel::new(&model);
        assert_eq!(packed.forward_full(Some(&a), &x), plain);
        // The masked-equivalent computation: zero the pruned channels and run
        // the unpruned weights through the dense kernel.
        let model_full = zoo::graphsage(6, 8, 3, 21);
        let mask: Vec<f32> = (0..6)
            .map(|i| if keep.contains(&i) { 1.0 } else { 0.0 })
            .collect();
        let masked_first: Matrix = {
            // First-layer check only: compacted GEMM == masked full GEMM.
            let z = x.clone();
            let zm = z.scale_cols(&mask);
            let l = &model_full.layers[0];
            let b0 = &l.branches[0];
            zm.matmul_zero_skipping(&b0.weight)
        };
        let compact = x
            .select_cols(&keep)
            .matmul(&model.layers[0].branches[0].weight);
        assert!(
            compact.approx_eq(&masked_first, 1e-5),
            "compacted pruned GEMM must equal the masked full-width GEMM"
        );
    }

    #[test]
    fn masked_branch_folds_into_pack() {
        // A branch holding the full-width masked weight (dead channels still
        // present) with a keep list must pack only the kept rows — identical
        // panels, identical forward pass, smaller pack than the full weight.
        let mut compact_model = zoo::graphsage(6, 8, 3, 33);
        let mut masked_model = zoo::graphsage(6, 8, 3, 33);
        let keep = vec![1, 3, 4];
        for (cm, mm) in compact_model
            .layers
            .iter_mut()
            .zip(&mut masked_model.layers)
        {
            for (cb, mb) in cm.branches.iter_mut().zip(mm.branches.iter_mut()) {
                if cb.in_dim() == 6 {
                    cb.weight = cb.weight.select_rows(&keep);
                    cb.keep = Some(keep.clone());
                    // The masked twin keeps the full-width weight.
                    mb.keep = Some(keep.clone());
                }
            }
        }
        let a = adj();
        let x = Matrix::rand_uniform(5, 6, -1.0, 1.0, &mut seeded_rng(34));
        let compact = PackedModel::new(&compact_model);
        let masked = PackedModel::new(&masked_model);
        assert_eq!(
            compact.packed_bytes(),
            masked.packed_bytes(),
            "mask-folded pack must not pack pruned channels"
        );
        assert_eq!(
            masked.forward_full(Some(&a), &x),
            compact.forward_full(Some(&a), &x),
            "masked and compacted models must agree bitwise through the pack"
        );
        // Int8 twin: scales over kept rows only ⇒ identical quantized packs.
        let qc = QuantPackedModel::new(&compact_model);
        let qm = QuantPackedModel::new(&masked_model);
        assert_eq!(qc.packed_bytes(), qm.packed_bytes());
        // At these toy widths the per-column scales and pair padding eat
        // into the 4x; the int8 pack must still be strictly smaller.
        assert!(qc.packed_bytes() < compact.packed_bytes());
        assert_eq!(
            qc.branch_packs(0).len(),
            compact_model.layers[0].branches.len()
        );
    }

    #[test]
    fn jk_model_packs_and_matches() {
        let mut rng = seeded_rng(31);
        let l1 = BranchLayer::dense(Matrix::glorot(6, 4, &mut rng), None, Activation::Relu);
        let l2 = BranchLayer::dense(Matrix::glorot(4, 4, &mut rng), None, Activation::Relu);
        let cls = BranchLayer::dense(Matrix::glorot(8, 2, &mut rng), None, Activation::None);
        let model = GnnModel {
            layers: vec![l1, l2, cls],
            jk: true,
        };
        let x = Matrix::rand_uniform(3, 6, -1.0, 1.0, &mut rng);
        let packed = PackedModel::new(&model);
        assert_eq!(packed.forward_full(None, &x), model.forward_full(None, &x));
    }
}
