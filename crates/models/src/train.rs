//! Training loops: GraphSAINT subgraph training (the paper's §4 setup) and
//! full-batch training, both with ADAM and validation-F1 early stopping.

use gcnp_autograd::{Adam, AdamConfig, SharedAdj, Tape};
use gcnp_datasets::{Dataset, Labels};
use gcnp_sparse::sample::RandomWalkSampler;
use gcnp_sparse::{CsrMatrix, Normalization};
use gcnp_tensor::init::seeded_rng;
use gcnp_tensor::Matrix;

use crate::metrics::Metrics;
use crate::model::GnnModel;

/// Loss selection (derived from the dataset's label mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Softmax cross-entropy (single-label).
    Softmax,
    /// Binary cross-entropy with logits (multi-label).
    Bce,
}

impl LossKind {
    /// The loss matching a label mode.
    pub fn for_labels(labels: &Labels) -> Self {
        if labels.is_multi() {
            LossKind::Bce
        } else {
            LossKind::Softmax
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum number of optimization steps.
    pub steps: usize,
    /// Validate every this many steps.
    pub eval_every: usize,
    /// Stop after this many validations without improvement.
    pub patience: usize,
    pub lr: f32,
    /// Input-feature dropout probability.
    pub dropout: f32,
    /// GraphSAINT random-walk roots per subgraph.
    pub saint_roots: usize,
    /// GraphSAINT walk length.
    pub walk_len: usize,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            eval_every: 10,
            patience: 8,
            lr: 0.01,
            dropout: 0.1,
            saint_roots: 512,
            walk_len: 2,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainStats {
    pub steps_run: usize,
    pub best_val_f1: f64,
    pub final_train_loss: f32,
    pub seconds: f64,
}

/// Training entry points.
pub struct Trainer;

impl Trainer {
    /// Full-graph evaluation helper: F1-Micro of `model` on nodes `idx`.
    pub fn evaluate(
        model: &GnnModel,
        adj: Option<&CsrMatrix>,
        x: &Matrix,
        labels: &Labels,
        idx: &[usize],
    ) -> f64 {
        let logits = model.forward_full(adj, x);
        Metrics::f1_micro_full(&logits, labels, idx)
    }

    /// GraphSAINT training (paper §4): each step samples a random-walk
    /// subgraph of the *training graph*, runs a full GNN step on it, and
    /// periodically validates on the full graph. The best-validation
    /// parameters are restored at the end.
    pub fn train_saint(model: &mut GnnModel, data: &Dataset, cfg: &TrainConfig) -> TrainStats {
        let t0 = std::time::Instant::now();
        let (train_adj, train_nodes) = data.train_adj();
        let train_x = data.features.gather_rows(&train_nodes);
        let sampler = RandomWalkSampler {
            roots: cfg.saint_roots,
            walk_len: cfg.walk_len,
        };
        let loss_kind = LossKind::for_labels(&data.labels);
        let mut rng = seeded_rng(cfg.seed);
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        });
        let full_adj = data.adj.normalized(Normalization::Row);

        let all_train: Vec<usize> = (0..train_nodes.len()).collect();
        let mut best_f1 = -1.0f64;
        let mut best_params: Option<Vec<Matrix>> = None;
        let mut strikes = 0usize;
        let mut steps_run = 0usize;
        let mut last_loss = f32::NAN;

        for step in 1..=cfg.steps {
            steps_run = step;
            // --- sample subgraph (indices into the training graph) ---
            let sub_nodes = sampler.sample(&train_adj, &all_train, &mut rng);
            if sub_nodes.len() < 4 {
                continue;
            }
            let sub_adj =
                SharedAdj::new(train_adj.induced(&sub_nodes).normalized(Normalization::Row));
            let sub_x = train_x.gather_rows(&sub_nodes);

            // --- one ADAM step on the subgraph ---
            let mut tape = Tape::new();
            let mut xv = tape.constant(sub_x);
            if cfg.dropout > 0.0 {
                xv = tape.dropout(xv, cfg.dropout, &mut rng);
            }
            let pvars = model.register_params(&mut tape);
            let logits = model.forward_tape(&mut tape, Some(&sub_adj), xv, &pvars);
            let loss = match (&data.labels, loss_kind) {
                (Labels::Single(y, _), LossKind::Softmax) => {
                    let sub_labels: Vec<usize> =
                        sub_nodes.iter().map(|&i| y[train_nodes[i]]).collect();
                    tape.softmax_xent(logits, &sub_labels)
                }
                (Labels::Multi(y), LossKind::Bce) => {
                    let globals: Vec<usize> = sub_nodes.iter().map(|&i| train_nodes[i]).collect();
                    tape.bce_logits(logits, y.gather_rows(&globals))
                }
                _ => unreachable!("loss kind always matches label mode"),
            };
            last_loss = tape.scalar(loss);
            tape.backward(loss);
            let grads: Vec<Option<&Matrix>> = pvars.iter().map(|&v| tape.grad(v)).collect();
            opt.step(&mut model.params_mut(), &grads);

            // --- periodic validation on the full graph -------------------
            if step % cfg.eval_every == 0 || step == cfg.steps {
                let f1 = Self::evaluate(
                    model,
                    Some(&full_adj),
                    &data.features,
                    &data.labels,
                    &data.val,
                );
                if f1 > best_f1 {
                    best_f1 = f1;
                    best_params = Some(model.params_mut().iter().map(|p| (**p).clone()).collect());
                    strikes = 0;
                } else {
                    strikes += 1;
                    if strikes >= cfg.patience {
                        break;
                    }
                }
            }
        }
        if let Some(best) = best_params {
            for (p, b) in model.params_mut().into_iter().zip(best) {
                *p = b;
            }
        }
        TrainStats {
            steps_run,
            best_val_f1: best_f1.max(0.0),
            final_train_loss: last_loss,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Full-batch training on a fixed `(adj, x)` pair with the loss
    /// restricted to `train` rows. Used for the precomputed-propagation
    /// baselines (SGC, SIGN, PPRGo head) and for distillation (`distill`
    /// adds `α·MSE(logits, teacher_logits)` — TinyGNN's student objective).
    #[allow(clippy::too_many_arguments)]
    pub fn train_full_batch(
        model: &mut GnnModel,
        adj: Option<&CsrMatrix>,
        x: &Matrix,
        labels: &Labels,
        train: &[usize],
        val: &[usize],
        cfg: &TrainConfig,
        distill: Option<(&Matrix, f32)>,
    ) -> TrainStats {
        let t0 = std::time::Instant::now();
        let shared = adj.map(|a| SharedAdj::new(a.clone()));
        let mut rng = seeded_rng(cfg.seed);
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        });
        let mut best_f1 = -1.0f64;
        let mut best_params: Option<Vec<Matrix>> = None;
        let mut strikes = 0usize;
        let mut steps_run = 0usize;
        let mut last_loss = f32::NAN;

        for step in 1..=cfg.steps {
            steps_run = step;
            let mut tape = Tape::new();
            let mut xv = tape.constant(x.clone());
            if cfg.dropout > 0.0 {
                xv = tape.dropout(xv, cfg.dropout, &mut rng);
            }
            let pvars = model.register_params(&mut tape);
            let logits = model.forward_tape(&mut tape, shared.as_ref(), xv, &pvars);
            let train_logits = tape.gather_rows(logits, train);
            let mut loss = match labels {
                Labels::Single(y, _) => {
                    let yl: Vec<usize> = train.iter().map(|&v| y[v]).collect();
                    tape.softmax_xent(train_logits, &yl)
                }
                Labels::Multi(y) => tape.bce_logits(train_logits, y.gather_rows(train)),
            };
            if let Some((teacher, alpha)) = distill {
                let mse = tape.mse(train_logits, teacher.gather_rows(train));
                let mse = tape.scale(mse, alpha);
                loss = tape.add(loss, mse);
            }
            last_loss = tape.scalar(loss);
            tape.backward(loss);
            let grads: Vec<Option<&Matrix>> = pvars.iter().map(|&v| tape.grad(v)).collect();
            opt.step(&mut model.params_mut(), &grads);

            if step % cfg.eval_every == 0 || step == cfg.steps {
                let f1 = Self::evaluate(model, adj, x, labels, val);
                if f1 > best_f1 {
                    best_f1 = f1;
                    best_params = Some(model.params_mut().iter().map(|p| (**p).clone()).collect());
                    strikes = 0;
                } else {
                    strikes += 1;
                    if strikes >= cfg.patience {
                        break;
                    }
                }
            }
        }
        if let Some(best) = best_params {
            for (p, b) in model.params_mut().into_iter().zip(best) {
                *p = b;
            }
        }
        TrainStats {
            steps_run,
            best_val_f1: best_f1.max(0.0),
            final_train_loss: last_loss,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use gcnp_datasets::SynthConfig;

    fn tiny_dataset(multi: bool) -> Dataset {
        SynthConfig {
            nodes: 300,
            classes: 3,
            communities: 3,
            attr_dim: 16,
            multi_label: multi,
            noise: 0.5,
            ..Default::default()
        }
        .generate(7)
    }

    #[test]
    fn saint_training_learns_single_label() {
        let data = tiny_dataset(false);
        let mut model = zoo::graphsage(16, 16, 3, 11);
        let cfg = TrainConfig {
            steps: 60,
            eval_every: 10,
            saint_roots: 50,
            walk_len: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let stats = Trainer::train_saint(&mut model, &data, &cfg);
        assert!(
            stats.best_val_f1 > 0.7,
            "SAINT training should beat chance (0.33): {}",
            stats.best_val_f1
        );
    }

    #[test]
    fn saint_training_learns_multi_label() {
        let data = tiny_dataset(true);
        let mut model = zoo::graphsage(16, 16, 3, 13);
        let cfg = TrainConfig {
            steps: 60,
            eval_every: 10,
            saint_roots: 50,
            walk_len: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let stats = Trainer::train_saint(&mut model, &data, &cfg);
        assert!(
            stats.best_val_f1 > 0.5,
            "multi-label F1 {}",
            stats.best_val_f1
        );
    }

    #[test]
    fn full_batch_training_learns() {
        let data = tiny_dataset(false);
        let adj = data.adj.normalized(Normalization::Row);
        let mut model = zoo::mlp(16, 16, 3, 17);
        let cfg = TrainConfig {
            steps: 80,
            eval_every: 10,
            dropout: 0.0,
            ..Default::default()
        };
        let stats = Trainer::train_full_batch(
            &mut model,
            Some(&adj),
            &data.features,
            &data.labels,
            &data.train,
            &data.val,
            &cfg,
            None,
        );
        assert!(
            stats.best_val_f1 > 0.6,
            "full-batch F1 {}",
            stats.best_val_f1
        );
    }

    #[test]
    fn early_stopping_restores_best() {
        let data = tiny_dataset(false);
        let mut model = zoo::graphsage(16, 8, 3, 19);
        let cfg = TrainConfig {
            steps: 30,
            eval_every: 5,
            patience: 2,
            saint_roots: 40,
            ..Default::default()
        };
        let stats = Trainer::train_saint(&mut model, &data, &cfg);
        let adj = data.adj.normalized(Normalization::Row);
        let f1_now = Trainer::evaluate(&model, Some(&adj), &data.features, &data.labels, &data.val);
        assert!(
            (f1_now - stats.best_val_f1).abs() < 1e-9,
            "restored params match best"
        );
    }
}
