//! Stacked GNN models.

use gcnp_autograd::{SharedAdj, Tape, Var};
use gcnp_sparse::CsrMatrix;
use gcnp_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::layer::BranchLayer;

/// A stack of [`BranchLayer`]s.
///
/// When `jk` is set, the final layer (the classifier) consumes the
/// concatenation of all previous layer outputs — the Jumping Knowledge
/// architecture (Xu et al., 2018). Otherwise each layer feeds the next.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnModel {
    pub layers: Vec<BranchLayer>,
    pub jk: bool,
}

impl GnnModel {
    /// A plain sequential stack.
    pub fn new(layers: Vec<BranchLayer>) -> Self {
        Self { layers, jk: false }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameter count.
    pub fn n_weights(&self) -> usize {
        self.layers.iter().map(BranchLayer::n_weights).sum()
    }

    /// Largest aggregation order used anywhere (receptive-field depth
    /// contribution per layer).
    pub fn uses_graph(&self) -> bool {
        self.layers.iter().any(BranchLayer::uses_graph)
    }

    /// Full-graph inference: forward all nodes through every layer.
    /// `adj` may be `None` for pure-MLP models.
    pub fn forward_full(&self, adj: Option<&CsrMatrix>, x: &Matrix) -> Matrix {
        self.forward_collect(adj, x)
            .pop()
            .expect("model has layers")
    }

    /// Like [`GnnModel::forward_full`] but returns every layer's
    /// post-activation output `h⁽¹⁾..h⁽ᴸ⁾` (the pruner and the hidden-feature
    /// store need the intermediate hidden features).
    pub fn forward_collect(&self, adj: Option<&CsrMatrix>, x: &Matrix) -> Vec<Matrix> {
        assert!(!self.layers.is_empty(), "forward_collect: empty model");
        let mut outputs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let input = if i == 0 {
                x.clone()
            } else if self.jk && i == n - 1 {
                let refs: Vec<&Matrix> = outputs.iter().collect();
                Matrix::concat_cols_all(&refs)
            } else {
                outputs[i - 1].clone()
            };
            outputs.push(layer.forward(adj, &input));
        }
        outputs
    }

    /// Register all parameters on a tape (layer order, weights then bias).
    pub fn register_params(&self, t: &mut Tape) -> Vec<Var> {
        self.layers
            .iter()
            .flat_map(|l| l.register_params(t))
            .collect()
    }

    /// Tape forward for training; `pvars` from [`GnnModel::register_params`].
    pub fn forward_tape(
        &self,
        t: &mut Tape,
        adj: Option<&SharedAdj>,
        x: Var,
        pvars: &[Var],
    ) -> Var {
        let mut offset = 0;
        let mut outputs: Vec<Var> = Vec::with_capacity(self.layers.len());
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let input = if i == 0 {
                x
            } else if self.jk && i == n - 1 {
                t.concat_cols(&outputs)
            } else {
                outputs[i - 1]
            };
            let np = layer.n_params();
            let out = layer.forward_tape(t, adj, input, &pvars[offset..offset + np]);
            offset += np;
            outputs.push(out);
        }
        *outputs.last().unwrap()
    }

    /// Mutable parameter references in registration order.
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Branch, CombineMode};
    use gcnp_sparse::Normalization;
    use gcnp_tensor::init::seeded_rng;

    fn adj() -> CsrMatrix {
        CsrMatrix::adjacency(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (2, 1)])
            .normalized(Normalization::Row)
    }

    fn sage(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
        let mut rng = seeded_rng(seed);
        let l1 = BranchLayer {
            branches: vec![
                Branch::new(0, Matrix::glorot(fin, hidden / 2, &mut rng)),
                Branch::new(1, Matrix::glorot(fin, hidden / 2, &mut rng)),
            ],
            bias: Some(Matrix::zeros(1, hidden)),
            combine: CombineMode::Concat,
            activation: Activation::Relu,
        };
        let l2 = BranchLayer {
            branches: vec![
                Branch::new(0, Matrix::glorot(hidden, hidden / 2, &mut rng)),
                Branch::new(1, Matrix::glorot(hidden, hidden / 2, &mut rng)),
            ],
            bias: Some(Matrix::zeros(1, hidden)),
            combine: CombineMode::Concat,
            activation: Activation::Relu,
        };
        let cls = BranchLayer::dense(
            Matrix::glorot(hidden, classes, &mut rng),
            Some(Matrix::zeros(1, classes)),
            Activation::None,
        );
        GnnModel::new(vec![l1, l2, cls])
    }

    #[test]
    fn forward_shapes() {
        let m = sage(6, 8, 3, 1);
        let x = Matrix::rand_uniform(4, 6, -1.0, 1.0, &mut seeded_rng(2));
        let out = m.forward_full(Some(&adj()), &x);
        assert_eq!(out.shape(), (4, 3));
        let hs = m.forward_collect(Some(&adj()), &x);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[0].shape(), (4, 8));
        assert_eq!(hs[1].shape(), (4, 8));
    }

    #[test]
    fn tape_matches_plain() {
        let m = sage(6, 8, 3, 3);
        let a = adj();
        let x = Matrix::rand_uniform(4, 6, -1.0, 1.0, &mut seeded_rng(4));
        let plain = m.forward_full(Some(&a), &x);
        let shared = SharedAdj::new(a);
        let mut t = Tape::new();
        let xv = t.constant(x);
        let pvars = m.register_params(&mut t);
        let out = m.forward_tape(&mut t, Some(&shared), xv, &pvars);
        assert!(t.value(out).approx_eq(&plain, 1e-5));
    }

    #[test]
    fn jk_concatenates_all_hidden() {
        let mut rng = seeded_rng(5);
        let l1 = BranchLayer::dense(Matrix::glorot(6, 4, &mut rng), None, Activation::Relu);
        let l2 = BranchLayer::dense(Matrix::glorot(4, 4, &mut rng), None, Activation::Relu);
        let cls = BranchLayer::dense(Matrix::glorot(8, 2, &mut rng), None, Activation::None);
        let m = GnnModel {
            layers: vec![l1, l2, cls],
            jk: true,
        };
        let x = Matrix::rand_uniform(3, 6, -1.0, 1.0, &mut rng);
        // Classifier input dim is 4 + 4 = 8 -> must not panic, output 3x2.
        assert_eq!(m.forward_full(None, &x).shape(), (3, 2));
    }

    #[test]
    fn params_mut_matches_registration_order() {
        let mut m = sage(6, 8, 3, 6);
        let n: usize = m.layers.iter().map(|l| l.n_params()).sum();
        assert_eq!(m.params_mut().len(), n);
        let mut t = Tape::new();
        assert_eq!(m.register_params(&mut t).len(), n);
    }
}
