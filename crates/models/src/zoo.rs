//! The model zoo: constructors for every architecture in the paper's
//! comparison experiments (Fig. 1 and Table 5).

use gcnp_autograd::{Adam, AdamConfig, SharedAdj, Tape, Var};
use gcnp_datasets::{Dataset, Labels};
use gcnp_sparse::ppr::{ppr_matrix, PprConfig};
use gcnp_sparse::{CsrMatrix, Normalization};
use gcnp_tensor::init::seeded_rng;
use gcnp_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::layer::{Activation, Branch, BranchLayer, CombineMode};
use crate::metrics::Metrics;
use crate::model::GnnModel;
use crate::train::{TrainConfig, TrainStats, Trainer};

/// A GraphSAGE layer (Eq. 1 with `K′=0, K=1`, concat): `fin → fout`
/// via two `fout/2`-wide branches.
pub fn sage_layer(
    fin: usize,
    fout: usize,
    act: Activation,
    rng: &mut rand::rngs::StdRng,
) -> BranchLayer {
    assert!(fout.is_multiple_of(2), "sage_layer: fout must be even");
    BranchLayer {
        branches: vec![
            Branch::new(0, Matrix::glorot(fin, fout / 2, rng)),
            Branch::new(1, Matrix::glorot(fin, fout / 2, rng)),
        ],
        bias: Some(Matrix::zeros(1, fout)),
        combine: CombineMode::Concat,
        activation: act,
    }
}

/// The paper's reference architecture (§4): 2 GraphSAGE layers + a dense
/// classifier (itself "a GNN layer with K′=K=0", §3.3).
pub fn graphsage(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    let l1 = sage_layer(fin, hidden, Activation::Relu, &mut rng);
    let l2 = sage_layer(hidden, hidden, Activation::Relu, &mut rng);
    let cls = BranchLayer::dense(
        Matrix::glorot(hidden, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    );
    GnnModel::new(vec![l1, l2, cls])
}

/// Vanilla GCN (Eq. 1 with `K′=K=1`): 2 graph layers + dense classifier.
/// Use with a symmetrically normalized adjacency with self-loops.
pub fn gcn(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    let layer = |fi: usize, fo: usize, act, rng: &mut _| BranchLayer {
        branches: vec![Branch::new(1, Matrix::glorot(fi, fo, rng))],
        bias: Some(Matrix::zeros(1, fo)),
        combine: CombineMode::Concat,
        activation: act,
    };
    let l1 = layer(fin, hidden, Activation::Relu, &mut rng);
    let l2 = layer(hidden, hidden, Activation::Relu, &mut rng);
    let cls = BranchLayer::dense(
        Matrix::glorot(hidden, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    );
    GnnModel::new(vec![l1, l2, cls])
}

/// MixHop (Eq. 1 with `K′=0, K=2`): one mixed layer + dense classifier,
/// giving the same two-hop receptive field as the other baselines.
pub fn mixhop(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    let per = (hidden / 3).max(1);
    let l1 = BranchLayer {
        branches: (0..=2)
            .map(|k| Branch::new(k, Matrix::glorot(fin, per, &mut rng)))
            .collect(),
        bias: Some(Matrix::zeros(1, 3 * per)),
        combine: CombineMode::Concat,
        activation: Activation::Relu,
    };
    let cls = BranchLayer::dense(
        Matrix::glorot(3 * per, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    );
    GnnModel::new(vec![l1, cls])
}

/// Jumping Knowledge network: 2 GraphSAGE layers whose outputs are
/// concatenated into the classifier.
pub fn jk(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    let l1 = sage_layer(fin, hidden, Activation::Relu, &mut rng);
    let l2 = sage_layer(hidden, hidden, Activation::Relu, &mut rng);
    let cls = BranchLayer::dense(
        Matrix::glorot(2 * hidden, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    );
    GnnModel {
        layers: vec![l1, l2, cls],
        jk: true,
    }
}

/// 2-layer MLP (the paper's MLP-2 baseline, Table 5) — no graph access.
pub fn mlp(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    let l1 = BranchLayer::dense(
        Matrix::glorot(fin, hidden, &mut rng),
        Some(Matrix::zeros(1, hidden)),
        Activation::Relu,
    );
    let cls = BranchLayer::dense(
        Matrix::glorot(hidden, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    );
    GnnModel::new(vec![l1, cls])
}

/// TinyGNN-style 1-layer student (one SAGE hop + classifier), to be
/// distilled from a 2-layer teacher via
/// [`Trainer::train_full_batch`]'s `distill` argument.
pub fn tinygnn_student(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    let l1 = sage_layer(fin, hidden, Activation::Relu, &mut rng);
    let cls = BranchLayer::dense(
        Matrix::glorot(hidden, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    );
    GnnModel::new(vec![l1, cls])
}

/// SGC feature pre-processing: `Ãᵏ · X` (Wu et al., 2019). The returned
/// matrix replaces the node attributes; the model is a single dense layer.
pub fn sgc_features(adj_norm: &CsrMatrix, x: &Matrix, k: usize) -> Matrix {
    let mut z = x.clone();
    for _ in 0..k {
        z = adj_norm.spmm(&z);
    }
    z
}

/// SGC head: one linear layer on the pre-propagated features.
pub fn sgc_model(fin: usize, classes: usize, seed: u64) -> GnnModel {
    let mut rng = seeded_rng(seed);
    GnnModel::new(vec![BranchLayer::dense(
        Matrix::glorot(fin, classes, &mut rng),
        Some(Matrix::zeros(1, classes)),
        Activation::None,
    )])
}

/// SIGN feature pre-processing with `(r,0,0)` operators: `[X ‖ ÃX ‖ … ‖ ÃʳX]`.
pub fn sign_features(adj_norm: &CsrMatrix, x: &Matrix, r: usize) -> Matrix {
    let mut parts: Vec<Matrix> = Vec::with_capacity(r + 1);
    parts.push(x.clone());
    for _ in 0..r {
        let next = adj_norm.spmm(parts.last().unwrap());
        parts.push(next);
    }
    let refs: Vec<&Matrix> = parts.iter().collect();
    Matrix::concat_cols_all(&refs)
}

/// SIGN head: an MLP over the concatenated propagated features. SIGN's
/// feed-forward layers are wide (the paper reports 460/675 hidden units),
/// which is why its per-node compute tops Table 5.
pub fn sign_model(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    mlp(fin, hidden, classes, seed)
}

/// GIN-style sum aggregation operator: `A + (1+ε)·I` — feed to
/// [`gin`] layers *unnormalized* so neighborhoods are summed, the
/// injectivity trick of Xu et al. (2019). Eq. 1 covers GIN by "alternating
/// the normalized adjacency matrix" (§2.1).
pub fn gin_adjacency(adj: &CsrMatrix, eps: f32) -> CsrMatrix {
    assert_eq!(adj.n_rows(), adj.n_cols(), "gin_adjacency: square required");
    let mut edges: Vec<(u32, u32, f32)> = Vec::with_capacity(adj.nnz() + adj.n_rows());
    for r in 0..adj.n_rows() {
        for (c, v) in adj.row_iter(r) {
            if c as usize != r {
                edges.push((r as u32, c, v));
            }
        }
        edges.push((r as u32, r as u32, 1.0 + eps));
    }
    CsrMatrix::from_edges(adj.n_rows(), adj.n_cols(), &edges)
}

/// GIN: two sum-aggregation layers + dense classifier. Use with
/// [`gin_adjacency`] (NOT a normalized adjacency).
pub fn gin(fin: usize, hidden: usize, classes: usize, seed: u64) -> GnnModel {
    // Architecturally identical to GCN per Eq. 1; the aggregation operator
    // carries the GIN semantics.
    gcn(fin, hidden, classes, seed)
}

// ---------------------------------------------------------------------------
// APPNP
// ---------------------------------------------------------------------------

/// APPNP (Klicpera et al., 2019): an MLP on raw attributes whose logits are
/// propagated by `K` personalized-PageRank power iterations,
/// `Z ← (1−α)·Ã·Z + α·H`. The iterative sibling of the PPRGo baseline.
#[derive(Debug, Clone)]
pub struct AppnpModel {
    pub head: GnnModel,
    pub alpha: f32,
    pub k: usize,
}

impl AppnpModel {
    /// Fresh model with an `fin → hidden → classes` head.
    pub fn new(fin: usize, hidden: usize, classes: usize, alpha: f32, k: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "AppnpModel: alpha in [0,1]");
        Self {
            head: mlp(fin, hidden, classes, seed),
            alpha,
            k,
        }
    }

    /// Full inference: MLP then K propagation steps.
    pub fn forward_full(&self, adj_norm: &CsrMatrix, x: &Matrix) -> Matrix {
        let h = self.head.forward_full(None, x);
        let mut z = h.clone();
        for _ in 0..self.k {
            z = adj_norm.spmm(&z).scale(1.0 - self.alpha);
            z.add_scaled_assign(&h, self.alpha);
        }
        z
    }

    /// Full-batch training on the training graph.
    pub fn train(&mut self, data: &Dataset, cfg: &TrainConfig) -> TrainStats {
        let t0 = std::time::Instant::now();
        let (train_adj, train_nodes) = data.train_adj();
        let train_shared = SharedAdj::new(train_adj.normalized(Normalization::Row));
        let train_x = data.features.gather_rows(&train_nodes);
        let full_norm = data.adj.normalized(Normalization::Row);
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        });
        let mut best_f1 = -1.0f64;
        let mut best: Option<Vec<Matrix>> = None;
        let mut strikes = 0;
        let mut steps_run = 0;
        let mut last_loss = f32::NAN;
        for step in 1..=cfg.steps {
            steps_run = step;
            let mut tape = Tape::new();
            let xv = tape.constant(train_x.clone());
            let pvars = self.head.register_params(&mut tape);
            let h = self.head.forward_tape(&mut tape, None, xv, &pvars);
            let mut z = h;
            for _ in 0..self.k {
                let prop = tape.spmm(&train_shared, z);
                let prop = tape.scale(prop, 1.0 - self.alpha);
                let tele = tape.scale(h, self.alpha);
                z = tape.add(prop, tele);
            }
            let loss = match &data.labels {
                Labels::Single(y, _) => {
                    let yl: Vec<usize> = train_nodes.iter().map(|&v| y[v]).collect();
                    tape.softmax_xent(z, &yl)
                }
                Labels::Multi(y) => tape.bce_logits(z, y.gather_rows(&train_nodes)),
            };
            last_loss = tape.scalar(loss);
            tape.backward(loss);
            let grads: Vec<Option<&Matrix>> = pvars.iter().map(|&v| tape.grad(v)).collect();
            opt.step(&mut self.head.params_mut(), &grads);

            if step % cfg.eval_every == 0 || step == cfg.steps {
                let logits = self.forward_full(&full_norm, &data.features);
                let f1 = Metrics::f1_micro_full(&logits, &data.labels, &data.val);
                if f1 > best_f1 {
                    best_f1 = f1;
                    best = Some(
                        self.head
                            .params_mut()
                            .iter()
                            .map(|p| (**p).clone())
                            .collect(),
                    );
                    strikes = 0;
                } else {
                    strikes += 1;
                    if strikes >= cfg.patience {
                        break;
                    }
                }
            }
        }
        if let Some(b) = best {
            for (p, b) in self.head.params_mut().into_iter().zip(b) {
                *p = b;
            }
        }
        TrainStats {
            steps_run,
            best_val_f1: best_f1.max(0.0),
            final_train_loss: last_loss,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

// ---------------------------------------------------------------------------
// GAT
// ---------------------------------------------------------------------------

/// Single-head Graph Attention Network (Veličković et al., 2018): two
/// attention layers and a dense classifier. Single-head is enough to
/// reproduce GAT's Fig. 1 position (top accuracy, lowest throughput).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatModel {
    pub w1: Matrix,
    pub a_src1: Matrix,
    pub a_dst1: Matrix,
    pub w2: Matrix,
    pub a_src2: Matrix,
    pub a_dst2: Matrix,
    pub w_cls: Matrix,
    pub b_cls: Matrix,
    /// LeakyReLU slope for attention scores.
    pub slope: f32,
}

impl GatModel {
    /// Fresh Glorot-initialized model.
    pub fn new(fin: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Self {
            w1: Matrix::glorot(fin, hidden, &mut rng),
            a_src1: Matrix::glorot(hidden, 1, &mut rng),
            a_dst1: Matrix::glorot(hidden, 1, &mut rng),
            w2: Matrix::glorot(hidden, hidden, &mut rng),
            a_src2: Matrix::glorot(hidden, 1, &mut rng),
            a_dst2: Matrix::glorot(hidden, 1, &mut rng),
            w_cls: Matrix::glorot(hidden, classes, &mut rng),
            b_cls: Matrix::zeros(1, classes),
            slope: 0.2,
        }
    }

    /// Mutable parameter list (stable order).
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![
            &mut self.w1,
            &mut self.a_src1,
            &mut self.a_dst1,
            &mut self.w2,
            &mut self.a_src2,
            &mut self.a_dst2,
            &mut self.w_cls,
            &mut self.b_cls,
        ]
    }

    /// Register parameters on a tape in the [`GatModel::params_mut`] order.
    pub fn register_params(&self, t: &mut Tape) -> Vec<Var> {
        [
            &self.w1,
            &self.a_src1,
            &self.a_dst1,
            &self.w2,
            &self.a_src2,
            &self.a_dst2,
            &self.w_cls,
            &self.b_cls,
        ]
        .into_iter()
        .map(|m| t.param(m.clone()))
        .collect()
    }

    /// Tape forward (adjacency should include self-loops so every node
    /// attends at least to itself).
    pub fn forward_tape(&self, t: &mut Tape, adj: &SharedAdj, x: Var, p: &[Var]) -> Var {
        let (w1, a_src1, a_dst1, w2, a_src2, a_dst2, w_cls, b_cls) =
            (p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7]);
        let h = t.matmul(x, w1);
        let s = t.matmul(h, a_src1);
        let d = t.matmul(h, a_dst1);
        let h = t.attn_aggregate(adj, h, s, d, self.slope);
        let h = t.relu(h);
        let h = t.matmul(h, w2);
        let s = t.matmul(h, a_src2);
        let d = t.matmul(h, a_dst2);
        let h = t.attn_aggregate(adj, h, s, d, self.slope);
        let h = t.relu(h);
        let logits = t.matmul(h, w_cls);
        t.add_bias(logits, b_cls)
    }

    /// Plain inference (runs the tape with constants; no gradients kept).
    pub fn forward_full(&self, adj: &SharedAdj, x: &Matrix) -> Matrix {
        let mut t = Tape::new();
        let xv = t.constant(x.clone());
        let p: Vec<Var> = [
            &self.w1,
            &self.a_src1,
            &self.a_dst1,
            &self.w2,
            &self.a_src2,
            &self.a_dst2,
            &self.w_cls,
            &self.b_cls,
        ]
        .into_iter()
        .map(|m| t.constant(m.clone()))
        .collect();
        let out = self.forward_tape(&mut t, adj, xv, &p);
        t.value(out).clone()
    }

    /// Full-batch training on the training graph with validation-F1 early
    /// stopping on the full graph.
    pub fn train(&mut self, data: &Dataset, cfg: &TrainConfig) -> TrainStats {
        let t0 = std::time::Instant::now();
        let (train_adj, train_nodes) = data.train_adj();
        let train_shared = SharedAdj::new(train_adj.with_self_loops());
        let full_shared = SharedAdj::new(data.adj.with_self_loops());
        let train_x = data.features.gather_rows(&train_nodes);
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        });
        let mut best_f1 = -1.0f64;
        let mut best: Option<Vec<Matrix>> = None;
        let mut strikes = 0;
        let mut steps_run = 0;
        let mut last_loss = f32::NAN;
        for step in 1..=cfg.steps {
            steps_run = step;
            let mut tape = Tape::new();
            let xv = tape.constant(train_x.clone());
            let pvars = self.register_params(&mut tape);
            let logits = self.forward_tape(&mut tape, &train_shared, xv, &pvars);
            let loss = match &data.labels {
                Labels::Single(y, _) => {
                    let yl: Vec<usize> = train_nodes.iter().map(|&v| y[v]).collect();
                    tape.softmax_xent(logits, &yl)
                }
                Labels::Multi(y) => tape.bce_logits(logits, y.gather_rows(&train_nodes)),
            };
            last_loss = tape.scalar(loss);
            tape.backward(loss);
            let grads: Vec<Option<&Matrix>> = pvars.iter().map(|&v| tape.grad(v)).collect();
            opt.step(&mut self.params_mut(), &grads);

            if step % cfg.eval_every == 0 || step == cfg.steps {
                let logits = self.forward_full(&full_shared, &data.features);
                let f1 = Metrics::f1_micro_full(&logits, &data.labels, &data.val);
                if f1 > best_f1 {
                    best_f1 = f1;
                    best = Some(self.params_mut().iter().map(|p| (**p).clone()).collect());
                    strikes = 0;
                } else {
                    strikes += 1;
                    if strikes >= cfg.patience {
                        break;
                    }
                }
            }
        }
        if let Some(b) = best {
            for (p, b) in self.params_mut().into_iter().zip(b) {
                *p = b;
            }
        }
        TrainStats {
            steps_run,
            best_val_f1: best_f1.max(0.0),
            final_train_loss: last_loss,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

// ---------------------------------------------------------------------------
// PPRGo
// ---------------------------------------------------------------------------

/// PPRGo (Bojchevski et al., 2020): an MLP on raw attributes whose logits
/// are aggregated over each target's approximate-PPR neighborhood.
#[derive(Debug, Clone)]
pub struct PprgoModel {
    /// The feature MLP `f(X)`.
    pub head: GnnModel,
    pub ppr: PprConfig,
}

impl PprgoModel {
    /// Fresh model with an `fin → hidden → classes` head.
    pub fn new(fin: usize, hidden: usize, classes: usize, ppr: PprConfig, seed: u64) -> Self {
        Self {
            head: mlp(fin, hidden, classes, seed),
            ppr,
        }
    }

    /// Predict logits for `targets`: `Π_targets · f(X)` (two-pass inference).
    pub fn predict(&self, adj: &CsrMatrix, x: &Matrix, targets: &[usize]) -> Matrix {
        let pi = ppr_matrix(adj, targets, &self.ppr);
        let f = self.head.forward_full(None, x);
        pi.spmm(&f)
    }

    /// Train the head so that PPR-aggregated logits classify the training
    /// nodes, using the training graph for PPR (no information leak).
    pub fn train(&mut self, data: &Dataset, cfg: &TrainConfig) -> TrainStats {
        let t0 = std::time::Instant::now();
        let (train_adj, train_nodes) = data.train_adj();
        let train_x = data.features.gather_rows(&train_nodes);
        // Π over training nodes (rows: train node i, cols: train graph).
        let all_train: Vec<usize> = (0..train_nodes.len()).collect();
        let pi = SharedAdj::new(ppr_matrix(&train_adj, &all_train, &self.ppr));
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        });
        let mut best_f1 = -1.0f64;
        let mut best: Option<Vec<Matrix>> = None;
        let mut strikes = 0;
        let mut steps_run = 0;
        let mut last_loss = f32::NAN;
        for step in 1..=cfg.steps {
            steps_run = step;
            let mut tape = Tape::new();
            let xv = tape.constant(train_x.clone());
            let pvars = self.head.register_params(&mut tape);
            let f = self.head.forward_tape(&mut tape, None, xv, &pvars);
            let logits = tape.spmm(&pi, f);
            let loss = match &data.labels {
                Labels::Single(y, _) => {
                    let yl: Vec<usize> = train_nodes.iter().map(|&v| y[v]).collect();
                    tape.softmax_xent(logits, &yl)
                }
                Labels::Multi(y) => tape.bce_logits(logits, y.gather_rows(&train_nodes)),
            };
            last_loss = tape.scalar(loss);
            tape.backward(loss);
            let grads: Vec<Option<&Matrix>> = pvars.iter().map(|&v| tape.grad(v)).collect();
            opt.step(&mut self.head.params_mut(), &grads);

            if step % cfg.eval_every == 0 || step == cfg.steps {
                let logits = self.predict(&data.adj, &data.features, &data.val);
                let f1 = Metrics::f1_micro(&logits, &data.labels, &data.val);
                if f1 > best_f1 {
                    best_f1 = f1;
                    best = Some(
                        self.head
                            .params_mut()
                            .iter()
                            .map(|p| (**p).clone())
                            .collect(),
                    );
                    strikes = 0;
                } else {
                    strikes += 1;
                    if strikes >= cfg.patience {
                        break;
                    }
                }
            }
        }
        if let Some(b) = best {
            for (p, b) in self.head.params_mut().into_iter().zip(b) {
                *p = b;
            }
        }
        TrainStats {
            steps_run,
            best_val_f1: best_f1.max(0.0),
            final_train_loss: last_loss,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// The evaluation helper shared by comparison experiments: test-set
/// F1-Micro via full inference on the full graph.
pub fn test_f1(model: &GnnModel, data: &Dataset, norm: Normalization) -> f64 {
    let adj = data.adj.normalized(norm);
    Trainer::evaluate(model, Some(&adj), &data.features, &data.labels, &data.test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnp_datasets::SynthConfig;

    fn tiny() -> Dataset {
        SynthConfig {
            nodes: 240,
            classes: 3,
            communities: 3,
            attr_dim: 12,
            noise: 0.5,
            ..Default::default()
        }
        .generate(3)
    }

    #[test]
    fn constructors_produce_consistent_shapes() {
        let d = tiny();
        let adj_row = d.adj.normalized(Normalization::Row);
        let adj_sym = d.adj.with_self_loops().normalized(Normalization::Symmetric);
        for (name, m, adj) in [
            ("sage", graphsage(12, 8, 3, 1), &adj_row),
            ("gcn", gcn(12, 8, 3, 1), &adj_sym),
            ("mixhop", mixhop(12, 9, 3, 1), &adj_row),
            ("jk", jk(12, 8, 3, 1), &adj_row),
            ("mlp", mlp(12, 8, 3, 1), &adj_row),
            ("tiny", tinygnn_student(12, 8, 3, 1), &adj_row),
        ] {
            let out = m.forward_full(Some(adj), &d.features);
            assert_eq!(out.shape(), (240, 3), "{name}");
        }
    }

    #[test]
    fn sgc_and_sign_features() {
        let d = tiny();
        let adj = d.adj.with_self_loops().normalized(Normalization::Symmetric);
        let z = sgc_features(&adj, &d.features, 2);
        assert_eq!(z.shape(), d.features.shape());
        let s = sign_features(&adj, &d.features, 2);
        assert_eq!(s.shape(), (240, 36));
        // First block of SIGN features is the raw attributes.
        assert_eq!(&s.row(5)[..12], d.features.row(5));
    }

    #[test]
    fn gat_trains_above_chance() {
        let d = tiny();
        let mut gat = GatModel::new(12, 8, 3, 5);
        let cfg = TrainConfig {
            steps: 40,
            eval_every: 10,
            lr: 0.02,
            ..Default::default()
        };
        let stats = gat.train(&d, &cfg);
        assert!(stats.best_val_f1 > 0.5, "GAT val F1 {}", stats.best_val_f1);
    }

    #[test]
    fn gat_forward_is_deterministic() {
        let d = tiny();
        let gat = GatModel::new(12, 8, 3, 5);
        let adj = SharedAdj::new(d.adj.with_self_loops());
        let a = gat.forward_full(&adj, &d.features);
        let b = gat.forward_full(&adj, &d.features);
        assert_eq!(a, b);
    }

    #[test]
    fn pprgo_trains_above_chance() {
        let d = tiny();
        let mut m = PprgoModel::new(12, 8, 3, PprConfig::default(), 7);
        let cfg = TrainConfig {
            steps: 50,
            eval_every: 10,
            lr: 0.02,
            ..Default::default()
        };
        let stats = m.train(&d, &cfg);
        assert!(
            stats.best_val_f1 > 0.5,
            "PPRGo val F1 {}",
            stats.best_val_f1
        );
        let logits = m.predict(&d.adj, &d.features, &d.test);
        assert_eq!(logits.shape(), (d.test.len(), 3));
    }

    #[test]
    fn gin_adjacency_has_weighted_diagonal() {
        let adj = CsrMatrix::adjacency(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let g = gin_adjacency(&adj, 0.5);
        for r in 0..3 {
            let diag = g
                .row_iter(r)
                .find(|&(c, _)| c as usize == r)
                .map(|(_, v)| v);
            assert_eq!(diag, Some(1.5));
        }
        // Off-diagonal edges preserved with weight 1.
        assert!(g.row_iter(0).any(|(c, v)| c == 1 && v == 1.0));
    }

    #[test]
    fn gin_trains_above_chance() {
        let d = tiny();
        let mut model = gin(12, 8, 3, 3);
        let gin_adj = gin_adjacency(&d.adj, 0.1);
        let cfg = TrainConfig {
            steps: 60,
            eval_every: 10,
            dropout: 0.0,
            ..Default::default()
        };
        let stats = Trainer::train_full_batch(
            &mut model,
            Some(&gin_adj),
            &d.features,
            &d.labels,
            &d.train,
            &d.val,
            &cfg,
            None,
        );
        assert!(stats.best_val_f1 > 0.5, "GIN val F1 {}", stats.best_val_f1);
    }

    #[test]
    fn appnp_trains_above_chance() {
        let d = tiny();
        let mut m = AppnpModel::new(12, 8, 3, 0.2, 3, 5);
        let cfg = TrainConfig {
            steps: 50,
            eval_every: 10,
            lr: 0.02,
            ..Default::default()
        };
        let stats = m.train(&d, &cfg);
        assert!(
            stats.best_val_f1 > 0.5,
            "APPNP val F1 {}",
            stats.best_val_f1
        );
        let adj = d.adj.normalized(Normalization::Row);
        assert_eq!(m.forward_full(&adj, &d.features).shape(), (240, 3));
    }

    #[test]
    fn appnp_alpha_one_is_pure_mlp() {
        let d = tiny();
        let m = AppnpModel::new(12, 8, 3, 1.0, 4, 7);
        let adj = d.adj.normalized(Normalization::Row);
        let propagated = m.forward_full(&adj, &d.features);
        let plain = m.head.forward_full(None, &d.features);
        assert!(
            propagated.approx_eq(&plain, 1e-4),
            "alpha=1 ignores the graph"
        );
    }

    #[test]
    fn distillation_improves_student_toward_teacher() {
        let d = tiny();
        // Teacher: train briefly.
        let mut teacher = graphsage(12, 8, 3, 9);
        let cfg = TrainConfig {
            steps: 50,
            eval_every: 10,
            saint_roots: 40,
            dropout: 0.0,
            ..Default::default()
        };
        Trainer::train_saint(&mut teacher, &d, &cfg);
        let adj = d.adj.normalized(Normalization::Row);
        let teacher_logits = teacher.forward_full(Some(&adj), &d.features);
        // Student distilled with teacher supervision.
        let mut student = tinygnn_student(12, 8, 3, 11);
        let stats = Trainer::train_full_batch(
            &mut student,
            Some(&adj),
            &d.features,
            &d.labels,
            &d.train,
            &d.val,
            &cfg,
            Some((&teacher_logits, 0.5)),
        );
        assert!(
            stats.best_val_f1 > 0.5,
            "student val F1 {}",
            stats.best_val_f1
        );
    }
}
