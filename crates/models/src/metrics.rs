//! Classification metrics: F1-Micro (the paper's headline metric), accuracy.

use gcnp_datasets::Labels;
use gcnp_tensor::Matrix;

/// Metric helpers over logits.
pub struct Metrics;

impl Metrics {
    /// F1-Micro of `logits` rows `idx` against the dataset labels.
    ///
    /// * single-label: micro-F1 equals plain accuracy (one gold and one
    ///   predicted label per node);
    /// * multi-label: micro-averaged F1 over all label bits, predicting a
    ///   bit when its logit is positive (σ(z) > 0.5 ⇔ z > 0).
    pub fn f1_micro(logits: &Matrix, labels: &Labels, idx: &[usize]) -> f64 {
        match labels {
            Labels::Single(y, _) => {
                if idx.is_empty() {
                    return 0.0;
                }
                let preds = logits.argmax_rows();
                let correct = idx
                    .iter()
                    .enumerate()
                    .filter(|&(r, &v)| preds[r] == y[v])
                    .count();
                correct as f64 / idx.len() as f64
            }
            Labels::Multi(y) => {
                let (mut tp, mut fp, mut fnc) = (0u64, 0u64, 0u64);
                for (r, &v) in idx.iter().enumerate() {
                    for c in 0..y.cols() {
                        let pred = logits.get(r, c) > 0.0;
                        let gold = y.get(v, c) > 0.5;
                        match (pred, gold) {
                            (true, true) => tp += 1,
                            (true, false) => fp += 1,
                            (false, true) => fnc += 1,
                            (false, false) => {}
                        }
                    }
                }
                if tp == 0 {
                    return 0.0;
                }
                let precision = tp as f64 / (tp + fp) as f64;
                let recall = tp as f64 / (tp + fnc) as f64;
                2.0 * precision * recall / (precision + recall)
            }
        }
    }

    /// F1-Micro over the full graph: `logits` has one row per node and `idx`
    /// selects which nodes to score (rows of `logits` are indexed by `idx`
    /// directly).
    pub fn f1_micro_full(logits: &Matrix, labels: &Labels, idx: &[usize]) -> f64 {
        // Gather the relevant rows so the row-indexed variant applies.
        let sub = logits.gather_rows(idx);
        Self::f1_micro(&sub, labels, idx)
    }

    /// Plain accuracy for single-label problems (alias of micro-F1 there).
    pub fn accuracy(logits: &Matrix, labels: &Labels, idx: &[usize]) -> f64 {
        match labels {
            Labels::Single(..) => Self::f1_micro(logits, labels, idx),
            Labels::Multi(y) => {
                // Subset accuracy is too harsh for multi-label; report
                // bit-level accuracy instead.
                if idx.is_empty() {
                    return 0.0;
                }
                let mut correct = 0u64;
                for (r, &v) in idx.iter().enumerate() {
                    for c in 0..y.cols() {
                        if (logits.get(r, c) > 0.0) == (y.get(v, c) > 0.5) {
                            correct += 1;
                        }
                    }
                }
                correct as f64 / (idx.len() * y.cols()) as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_label_perfect_and_chance() {
        let labels = Labels::Single(vec![0, 1, 1, 0], 2);
        let idx = [0, 1, 2, 3];
        let perfect = Matrix::from_vec(4, 2, vec![5., 0., 0., 5., 0., 5., 5., 0.]);
        assert_eq!(Metrics::f1_micro(&perfect, &labels, &idx), 1.0);
        let wrong = Matrix::from_vec(4, 2, vec![0., 5., 5., 0., 5., 0., 0., 5.]);
        assert_eq!(Metrics::f1_micro(&wrong, &labels, &idx), 0.0);
    }

    #[test]
    fn single_label_subset_scoring() {
        let labels = Labels::Single(vec![0, 1, 0], 2);
        // Score only nodes 0 and 2; logits rows correspond to [0, 2].
        let logits = Matrix::from_vec(2, 2, vec![5., 0., 0., 5.]);
        let f1 = Metrics::f1_micro(&logits, &labels, &[0, 2]);
        assert_eq!(f1, 0.5);
    }

    #[test]
    fn multi_label_f1() {
        let y = Matrix::from_vec(2, 3, vec![1., 0., 1., 0., 1., 0.]);
        let labels = Labels::Multi(y);
        // Predict: node0 -> {0}, node1 -> {1, 2}. TP=2, FP=1, FN=1.
        let logits = Matrix::from_vec(2, 3, vec![1., -1., -1., -1., 1., 1.]);
        let f1 = Metrics::f1_micro(&logits, &labels, &[0, 1]);
        let p: f64 = 2.0 / 3.0;
        let r: f64 = 2.0 / 3.0;
        assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-9);
    }

    #[test]
    fn multi_label_all_negative_is_zero() {
        let y = Matrix::from_vec(1, 2, vec![1., 1.]);
        let labels = Labels::Multi(y);
        let logits = Matrix::from_vec(1, 2, vec![-1., -1.]);
        assert_eq!(Metrics::f1_micro(&logits, &labels, &[0]), 0.0);
    }

    #[test]
    fn empty_idx_is_zero() {
        let labels = Labels::Single(vec![], 2);
        let logits = Matrix::zeros(0, 2);
        assert_eq!(Metrics::f1_micro(&logits, &labels, &[]), 0.0);
    }

    #[test]
    fn full_variant_gathers_rows() {
        let labels = Labels::Single(vec![0, 1, 0], 2);
        let logits = Matrix::from_vec(3, 2, vec![5., 0., 0., 5., 5., 0.]);
        assert_eq!(Metrics::f1_micro_full(&logits, &labels, &[0, 1, 2]), 1.0);
        assert_eq!(Metrics::f1_micro_full(&logits, &labels, &[2]), 1.0);
    }

    #[test]
    fn bitwise_accuracy_multi() {
        let y = Matrix::from_vec(1, 4, vec![1., 0., 1., 0.]);
        let labels = Labels::Multi(y);
        let logits = Matrix::from_vec(1, 4, vec![1., 1., 1., -1.]);
        assert_eq!(Metrics::accuracy(&logits, &labels, &[0]), 0.75);
    }
}
