//! # gcnp-models
//!
//! The GNN model zoo and training substrate.
//!
//! Everything is built on the paper's Eq. (1):
//!
//! ```text
//! h⁽ⁱ⁾ = σ( ‖ₖ₌ₖ′..ᴷ  Ãᵏ h⁽ⁱ⁻¹⁾ Wₖ⁽ⁱ⁾ )
//! ```
//!
//! [`BranchLayer`] implements one such layer; [`GnnModel`] stacks them.
//! Specializations: `K′=K=1` → GCN, `K′=0,K=1` → GraphSAGE, `K′=0,K=2` →
//! MixHop, `K′=K=0` → dense/MLP layers. Each [`Branch`] optionally carries a
//! `keep` channel list, which is how pruned models run in compact form.
//!
//! Additional architectures for the paper's comparison experiments (Fig. 1,
//! Table 5) live in [`zoo`]: GAT (fused attention op), PPRGo (approximate
//! PageRank aggregation), SGC/SIGN (precomputed propagation), JK (jumping
//! knowledge), MLP, and TinyGNN-style distillation.
//!
//! Training follows the paper's §4: GraphSAINT random-walk subgraph steps
//! with ADAM, early-stopped on validation F1 ([`Trainer`]).

pub mod layer;
pub mod metrics;
pub mod model;
pub mod packed;
pub mod train;
pub mod zoo;

pub use layer::{Activation, Branch, BranchLayer, CombineMode};
pub use metrics::Metrics;
pub use model::GnnModel;
pub use packed::{PackedModel, QuantPackedModel};
pub use train::{LossKind, TrainConfig, TrainStats, Trainer};
pub use zoo::{AppnpModel, GatModel, PprgoModel};
