//! Edge-device deployment scenario: batched inference under a tight memory
//! budget (§4.3 — "the memory usage … makes it possible to perform
//! inference on edge devices like mobiles").
//!
//! Compares the per-batch working-set of the reference model against the
//! 8×-pruned model with stored hidden features, and checks both against a
//! hypothetical 64 MB device budget.
//!
//! ```sh
//! cargo run --release --example edge_device
//! ```

use gcnp::prelude::*;

const DEVICE_BUDGET_MB: f64 = 64.0;

fn main() {
    let data = DatasetKind::ArxivSim.generate_scaled(0.5, 3);
    println!("graph: {} nodes, {} attrs", data.n_nodes(), data.attr_dim());

    let mut model = zoo::graphsage(data.attr_dim(), 128, data.n_classes(), 1);
    let cfg = TrainConfig {
        steps: 100,
        eval_every: 10,
        ..Default::default()
    };
    Trainer::train_saint(&mut model, &data, &cfg);

    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let (mut pruned, _) = prune_model(
        &model,
        &tadj,
        &tx,
        0.125,
        Scheme::BatchedInference,
        &PrunerConfig::default(),
    );
    Trainer::train_saint(&mut pruned, &data, &cfg);

    // Populate the store offline (server side) with train+val features.
    let adj = data.adj.normalized(Normalization::Row);
    let engine = FullEngine::new(&pruned, Some(&adj));
    let hs = engine.hidden(&data.features);
    let store = FeatureStore::new(data.n_nodes(), pruned.n_layers() - 1);
    let mut offline: Vec<usize> = data.train.iter().chain(&data.val).copied().collect();
    offline.sort_unstable();
    for level in 1..pruned.n_layers() {
        store
            .put_rows(level, &offline, &hs[level - 1].gather_rows(&offline))
            .unwrap();
    }

    // Int8 weight quantization composes with pruning for edge deployment.
    let quant = gcnp_infer::QuantizedGnn::from_model(&pruned);
    let qlogits = quant.forward_full(Some(&adj), &data.features);
    let qf1 = Metrics::f1_micro_full(&qlogits, &data.labels, &data.test);
    println!(
        "int8 8x model: test F1 {:.3}, weights {:.2} MB (f32 reference {:.2} MB)",
        qf1,
        quant.weight_bytes() as f64 / 1e6,
        model.n_weights() as f64 * 4.0 / 1e6
    );

    let batch: Vec<usize> = data.test.iter().take(512).copied().collect();
    for (name, m, st) in [
        ("reference (no store)", &model, None),
        ("8x pruned (no store)", &pruned, None),
        ("8x pruned + store", &pruned, Some(&store)),
    ] {
        let mut engine = BatchedEngine::new(
            m,
            &data.adj,
            &data.features,
            vec![None, Some(32)],
            st,
            StorePolicy::None,
            0,
        );
        let res = engine.infer(&batch);
        let f1 = Metrics::f1_micro(&res.logits, &data.labels, &res.targets);
        let mb = res.mem_bytes as f64 / 1e6;
        println!(
            "{name:<22} F1 {:.3} | batch mem {:>6.1} MB | {:>5.1} ms | fits {DEVICE_BUDGET_MB} MB device: {}",
            f1,
            mb,
            res.seconds * 1e3,
            if mb <= DEVICE_BUDGET_MB { "YES" } else { "no" }
        );
    }
}
