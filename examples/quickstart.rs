//! Quickstart: train a GraphSAGE model, prune it with the LASSO framework,
//! retrain, and compare accuracy / complexity / speed — the paper's pipeline
//! end to end on one dataset.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gcnp::prelude::*;

fn main() {
    // 1. A benchmark graph (a scaled synthetic stand-in for Flickr — see
    //    DESIGN.md §1 for the substitution argument).
    let data = DatasetKind::FlickrSim.generate_scaled(0.25, 42);
    println!(
        "dataset: {} ({} nodes, {} edges, {} attrs, {} classes)",
        data.name,
        data.n_nodes(),
        data.adj.nnz(),
        data.attr_dim(),
        data.n_classes()
    );

    // 2. Train the reference 2-layer GraphSAGE with GraphSAINT sampling.
    let hidden = 128;
    let mut model = zoo::graphsage(data.attr_dim(), hidden, data.n_classes(), 1);
    let cfg = TrainConfig {
        steps: 120,
        eval_every: 10,
        patience: 6,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let stats = Trainer::train_saint(&mut model, &data, &cfg);
    println!(
        "trained reference model: val F1 {:.3} in {:.1}s ({} steps)",
        stats.best_val_f1,
        t0.elapsed().as_secs_f64(),
        stats.steps_run
    );

    let adj = data.adj.normalized(Normalization::Row);
    let engine = FullEngine::new(&model, Some(&adj));
    let base = engine.run(&data.features, 1, 3);
    let base_f1 = Metrics::f1_micro_full(&base.logits, &data.labels, &data.test);
    println!(
        "reference: test F1 {:.3}, {:.0} kMACs/node, {:.1} MB, {:.2} kN/s",
        base_f1,
        base.kmacs_per_node,
        base.memory_bytes as f64 / 1e6,
        base.throughput / 1e3
    );

    // 3. Prune at 4x (budget = 0.25) with the LASSO scheme for full inference.
    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let pcfg = PrunerConfig::default();
    let t0 = std::time::Instant::now();
    let (mut pruned, report) = prune_model(&model, &tadj, &tx, 0.25, Scheme::FullInference, &pcfg);
    println!(
        "pruned 4x in {:.1}s ({} -> {} weights)",
        t0.elapsed().as_secs_f64(),
        report.weights_before,
        report.weights_after
    );

    // 4. Retrain the pruned model until convergence.
    let t0 = std::time::Instant::now();
    let rstats = Trainer::train_saint(&mut pruned, &data, &cfg);
    println!(
        "retrained: val F1 {:.3} in {:.1}s",
        rstats.best_val_f1,
        t0.elapsed().as_secs_f64()
    );

    // 5. Compare.
    let engine = FullEngine::new(&pruned, Some(&adj));
    let fast = engine.run(&data.features, 1, 3);
    let fast_f1 = Metrics::f1_micro_full(&fast.logits, &data.labels, &data.test);
    println!(
        "pruned 4x:  test F1 {:.3}, {:.0} kMACs/node, {:.1} MB, {:.2} kN/s",
        fast_f1,
        fast.kmacs_per_node,
        fast.memory_bytes as f64 / 1e6,
        fast.throughput / 1e3
    );
    println!(
        "=> {:.2}x speedup, {:.2}x less compute, {:+.3} F1",
        fast.throughput / base.throughput,
        base.kmacs_per_node / fast.kmacs_per_node,
        fast_f1 - base_f1
    );
}
