//! Tour of the model zoo: train every architecture on one small graph and
//! compare accuracy, parameter count, and analytic per-node compute.
//!
//! ```sh
//! cargo run --release --example model_zoo
//! ```

use gcnp::prelude::*;
use gcnp_models::zoo::{sgc_features, sign_features, GatModel, PprgoModel};
use gcnp_sparse::ppr::PprConfig;

fn main() {
    let data = DatasetKind::ArxivSim.generate_scaled(0.15, 11);
    let (fin, classes, hidden) = (data.attr_dim(), data.n_classes(), 64);
    let adj_row = data.adj.normalized(Normalization::Row);
    let adj_sym = data
        .adj
        .with_self_loops()
        .normalized(Normalization::Symmetric);
    let cm = CostModel::new(data.n_nodes(), data.adj.avg_degree());
    let cfg = TrainConfig {
        steps: 80,
        eval_every: 10,
        ..Default::default()
    };
    println!(
        "{:<12} {:>8} {:>10} {:>12}",
        "model", "test F1", "params", "kMACs/node"
    );

    // Eq.(1)-family models, trained with GraphSAINT.
    for (name, mut model, adj) in [
        (
            "GraphSAGE",
            zoo::graphsage(fin, hidden, classes, 1),
            &adj_row,
        ),
        ("GCN", zoo::gcn(fin, hidden, classes, 1), &adj_sym),
        ("MixHop", zoo::mixhop(fin, hidden, classes, 1), &adj_row),
        ("JK", zoo::jk(fin, hidden, classes, 1), &adj_row),
    ] {
        Trainer::train_saint(&mut model, &data, &cfg);
        let f1 = Trainer::evaluate(&model, Some(adj), &data.features, &data.labels, &data.test);
        println!(
            "{name:<12} {f1:>8.3} {:>10} {:>12.0}",
            model.n_weights(),
            cm.full_kmacs_per_node(&model)
        );
    }

    // MLP (no graph).
    {
        let mut mlp = zoo::mlp(fin, hidden, classes, 1);
        Trainer::train_full_batch(
            &mut mlp,
            None,
            &data.features,
            &data.labels,
            &data.train,
            &data.val,
            &cfg,
            None,
        );
        let f1 = Trainer::evaluate(&mlp, None, &data.features, &data.labels, &data.test);
        println!(
            "{:<12} {f1:>8.3} {:>10} {:>12.0}",
            "MLP-2",
            mlp.n_weights(),
            cm.full_kmacs_per_node(&mlp)
        );
    }

    // Precomputed-propagation models.
    {
        let z = sgc_features(&adj_sym, &data.features, 2);
        let mut sgc = zoo::sgc_model(fin, classes, 1);
        Trainer::train_full_batch(
            &mut sgc,
            None,
            &z,
            &data.labels,
            &data.train,
            &data.val,
            &cfg,
            None,
        );
        let f1 = Trainer::evaluate(&sgc, None, &z, &data.labels, &data.test);
        println!(
            "{:<12} {f1:>8.3} {:>10} {:>12.0}",
            "SGC",
            sgc.n_weights(),
            cm.full_kmacs_per_node(&sgc)
        );
        let zs = sign_features(&adj_sym, &data.features, 2);
        let mut sign = zoo::sign_model(zs.cols(), hidden * 3, classes, 1);
        Trainer::train_full_batch(
            &mut sign,
            None,
            &zs,
            &data.labels,
            &data.train,
            &data.val,
            &cfg,
            None,
        );
        let f1 = Trainer::evaluate(&sign, None, &zs, &data.labels, &data.test);
        println!(
            "{:<12} {f1:>8.3} {:>10} {:>12.0}",
            "SIGN(2,0,0)",
            sign.n_weights(),
            cm.full_kmacs_per_node(&sign)
        );
    }

    // GAT.
    {
        let mut gat = GatModel::new(fin, hidden, classes, 1);
        let gat_cfg = TrainConfig {
            steps: 40,
            eval_every: 10,
            lr: 0.02,
            ..cfg.clone()
        };
        gat.train(&data, &gat_cfg);
        let shared = SharedAdj::new(data.adj.with_self_loops());
        let logits = gat.forward_full(&shared, &data.features);
        let f1 = Metrics::f1_micro_full(&logits, &data.labels, &data.test);
        println!("{:<12} {f1:>8.3} {:>10} {:>12}", "GAT", "-", "-");
    }

    // PPRGo.
    {
        let mut pprgo = PprgoModel::new(fin, hidden, classes, PprConfig::default(), 1);
        let pcfg = TrainConfig {
            steps: 60,
            eval_every: 10,
            lr: 0.02,
            ..cfg.clone()
        };
        pprgo.train(&data, &pcfg);
        let logits = pprgo.predict(&data.adj, &data.features, &data.test);
        let f1 = Metrics::f1_micro(&logits, &data.labels, &data.test);
        println!(
            "{:<12} {f1:>8.3} {:>10} {:>12.0}",
            "PPRGo",
            pprgo.head.n_weights(),
            cm.full_kmacs_per_node(&pprgo.head)
        );
    }
}
