//! Real-time spam detection (the paper's §4.3.1 application, miniaturized).
//!
//! Reviews arrive over time; every 30 simulated minutes the service runs
//! batched inference on the new reviews. A 4×-pruned model plus the hidden-
//! feature store keeps per-window latency low enough for real-time use.
//!
//! ```sh
//! cargo run --release --example spam_detection
//! ```

use gcnp::prelude::*;
use gcnp_datasets::oversample;

fn main() {
    // YelpCHI-like review graph with timestamps, over-sampled 4x.
    let base = DatasetKind::YelpChiSim.generate_scaled(0.25, 7);
    let graph = oversample(&base, 4, 7);
    println!(
        "review graph: {} reviews, {} edges, {} attrs",
        graph.n_nodes(),
        graph.adj.nnz(),
        graph.attr_dim()
    );

    // Train the detector on the base (historical) data.
    let mut model = zoo::graphsage(base.attr_dim(), 64, base.n_classes(), 1);
    let cfg = TrainConfig {
        steps: 80,
        eval_every: 10,
        ..Default::default()
    };
    let stats = Trainer::train_saint(&mut model, &base, &cfg);
    println!("detector trained: val F1 {:.3}", stats.best_val_f1);

    // Prune 4x with the batched-inference scheme and retrain.
    let (tadj, tnodes) = base.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = base.features.gather_rows(&tnodes);
    let (mut pruned, _) = prune_model(
        &model,
        &tadj,
        &tx,
        0.25,
        Scheme::BatchedInference,
        &PrunerConfig::default(),
    );
    Trainer::train_saint(&mut pruned, &base, &cfg);

    // Serve the stream: every 30 minutes, classify the new reviews.
    let store = FeatureStore::new(graph.n_nodes(), pruned.n_layers() - 1);
    let mut engine = BatchedEngine::new(
        &pruned,
        &graph.adj,
        &graph.features,
        vec![None, Some(32)],
        Some(&store),
        StorePolicy::Roots,
        0,
    );
    let mut total = 0usize;
    let mut correct = 0.0f64;
    let mut max_lat = 0.0f64;
    let mut windows = 0usize;
    for window in SpamStream::new(&graph, 30) {
        if window.day >= 3 {
            break; // first three days for the demo
        }
        if window.nodes.is_empty() {
            continue;
        }
        let res = engine.infer(&window.nodes);
        let f1 = Metrics::f1_micro(&res.logits, &graph.labels, &res.targets);
        correct += f1 * res.targets.len() as f64;
        total += res.targets.len();
        max_lat = max_lat.max(res.seconds * 1e3);
        windows += 1;
    }
    println!(
        "served {windows} windows / {total} reviews over 3 days: accuracy {:.3}, max latency {:.1} ms",
        correct / total as f64,
        max_lat
    );
    println!(
        "hidden-feature store grew to {} rows ({:.1} MB)",
        store.len(1),
        store.nbytes() as f64 / 1e6
    );
}
