//! Equivalence of the pipelined and sequential batched executors: bitwise
//! identical outputs across engine configurations, identical serving
//! counters under fault injection, thread-count invariance, and
//! overlap-aware occupancy accounting. See DESIGN.md "Pipelined batched
//! executor".

use gcnp::prelude::*;
use gcnp_tensor::init::seeded_rng;

fn chord_graph(n: usize) -> CsrMatrix {
    let mut e = Vec::new();
    for i in 0..n as u32 {
        for hop in [1u32, 5] {
            let j = (i + hop) % n as u32;
            e.push((i, j));
            e.push((j, i));
        }
    }
    CsrMatrix::adjacency(n, &e)
}

fn batches(n_nodes: usize, n_batches: usize, batch: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = seeded_rng(seed);
    (0..n_batches)
        .map(|_| {
            (0..batch)
                .map(|_| rand::RngExt::random_range(&mut rng, 0..n_nodes))
                .collect()
        })
        .collect()
}

fn assert_bitwise_equal(seq: &[BatchResult], pip: &[BatchResult], what: &str) {
    assert_eq!(seq.len(), pip.len(), "{what}: batch count");
    for (i, (s, p)) in seq.iter().zip(pip).enumerate() {
        assert_eq!(s.targets, p.targets, "{what}: batch {i} targets");
        assert_eq!(
            s.logits.as_slice(),
            p.logits.as_slice(),
            "{what}: batch {i} logits must be bitwise identical"
        );
        assert_eq!(s.macs, p.macs, "{what}: batch {i} macs");
        assert_eq!(s.mem_bytes, p.mem_bytes, "{what}: batch {i} mem");
        assert_eq!(s.n_supporting, p.n_supporting, "{what}: batch {i} support");
        assert_eq!(s.store_hits, p.store_hits, "{what}: batch {i} store hits");
    }
}

/// Acceptance: the pipelined executor produces bitwise-identical
/// `BatchResult` outputs to the sequential executor across engine
/// configurations — no store, write-through store (with the inter-batch
/// visibility barrier), a pre-warmed read-only store, and fan-out caps.
#[test]
fn pipelined_outputs_are_bitwise_identical_across_configs() {
    let n = 120;
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut seeded_rng(2));
    let model = zoo::graphsage(8, 12, 4, 19);
    let work = batches(n, 10, 9, 33);

    // Each config builds a fresh pair of identically-seeded engines (and
    // identically pre-warmed stores) and compares full outputs.
    type Cfg = (&'static str, Option<bool>, StorePolicy, Vec<Option<usize>>);
    let configs: Vec<Cfg> = vec![
        ("no store", None, StorePolicy::None, vec![]),
        (
            "write-through roots",
            Some(false),
            StorePolicy::Roots,
            vec![],
        ),
        (
            "warm read-only store",
            Some(true),
            StorePolicy::None,
            vec![],
        ),
        ("fan-out caps", None, StorePolicy::None, vec![Some(6); 4]),
    ];
    for (name, store_kind, policy, caps) in configs {
        let run = |mode: PipelineMode| -> Vec<BatchResult> {
            let store = store_kind.map(|warm| {
                let s = FeatureStore::new(n, model.n_layers() - 1);
                if warm {
                    // Pre-warm by running the batches once with root
                    // write-backs, then serve read-only against it.
                    let mut w = BatchedEngine::new(
                        &model,
                        &adj,
                        &x,
                        vec![],
                        Some(&s),
                        StorePolicy::Roots,
                        7,
                    );
                    for b in &work {
                        w.try_infer(b).unwrap();
                    }
                }
                s
            });
            let mut engine =
                BatchedEngine::new(&model, &adj, &x, caps.clone(), store.as_ref(), policy, 7);
            run_batches(&mut engine, &work, mode).unwrap()
        };
        let seq = run(PipelineMode::Sequential);
        let pip = run(PipelineMode::Pipelined);
        assert_bitwise_equal(&seq, &pip, name);
        assert!(
            seq.iter().any(|r| r.macs > 0),
            "{name}: the comparison must cover real compute"
        );
    }
}

/// Thread-count invariance: the pipelined executor under `GCNP_THREADS=4`
/// worth of kernel parallelism produces the same bits as single-threaded
/// sequential execution — stage overlap composes with intra-batch
/// parallelism without changing results.
#[test]
fn pipelined_is_thread_count_invariant() {
    let n = 100;
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 10, -1.0, 1.0, &mut seeded_rng(4));
    let model = zoo::graphsage(10, 16, 3, 23);
    let work = batches(n, 8, 12, 41);

    gcnp_tensor::set_num_threads(1);
    let mut e1 = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let seq1 = run_batches(&mut e1, &work, PipelineMode::Sequential).unwrap();

    gcnp_tensor::set_num_threads(4);
    let mut e4 = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let pip4 = run_batches(&mut e4, &work, PipelineMode::Pipelined).unwrap();
    gcnp_tensor::set_num_threads(0);

    assert_bitwise_equal(&seq1, &pip4, "1-thread sequential vs 4-thread pipelined");
}

/// Mode-matrix chaos: the same seeded fault schedule (panics + stragglers +
/// store-miss storms) run under both executors yields identical
/// deterministic serving counters — recovery semantics do not depend on
/// which stage hosts the fault.
#[test]
fn chaos_counters_are_identical_across_modes() {
    let n = 200;
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut seeded_rng(6));
    let model = zoo::graphsage(8, 12, 4, 29);
    let store = FeatureStore::new(n, model.n_layers() - 1);
    let pool: Vec<usize> = (0..n).collect();

    let run = |mode: PipelineMode| {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 32,
            n_requests: 320,
            seed: 13,
            pipeline: mode,
            ..Default::default()
        };
        let plan = FaultPlan {
            panics: 2,
            stragglers: 3,
            straggle_multiplier: 1.5,
            storms: 2,
            horizon: 12,
            seed: 99,
            ..Default::default()
        };
        let inj = plan.build().unwrap();
        let mut engines: Vec<BatchedEngine<'_>> = (0..4)
            .map(|w| {
                let mut e = BatchedEngine::new(
                    &model,
                    &adj,
                    &x,
                    vec![],
                    Some(&store),
                    StorePolicy::Roots,
                    w as u64,
                );
                e.set_faults(std::sync::Arc::clone(&inj));
                e
            })
            .collect();
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        (rep.counters(), inj.fired())
    };
    let (seq_counters, seq_fired) = run(PipelineMode::Sequential);
    let (pip_counters, pip_fired) = run(PipelineMode::Pipelined);
    assert_eq!(
        seq_counters, pip_counters,
        "deterministic counters must not depend on the executor"
    );
    assert_eq!(
        seq_fired, pip_fired,
        "the full schedule fires in both modes"
    );
    assert!(seq_fired.0 > 0, "panics must actually fire");
}

/// Overlap-aware accounting: per-stage busy time can never exceed the
/// stage-thread wall budget, so the occupancy gauge is a true fraction in
/// (0, 1] in both modes — and the pipelined run's per-worker busy time may
/// legitimately exceed its wall share (that's the overlap).
#[test]
fn stage_busy_accounting_stays_within_wall_clock() {
    let n = 150;
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut seeded_rng(8));
    let model = zoo::graphsage(8, 16, 4, 31);
    let pool: Vec<usize> = (0..n).collect();
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 16,
            n_requests: 320,
            seed: 17,
            pipeline: mode,
            ..Default::default()
        };
        let mut engines: Vec<BatchedEngine<'_>> = (0..2)
            .map(|w| BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, w))
            .collect();
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        assert_eq!(rep.served, 320, "{mode:?}");
        assert!(
            rep.pipeline_occupancy > 0.0 && rep.pipeline_occupancy <= 1.0,
            "{mode:?}: occupancy {} must be a fraction of stage-thread time",
            rep.pipeline_occupancy
        );
        // No wall-clock-relative bound on `compute_seconds` here: in
        // pipelined mode a batch's `seconds` spans its inter-stage queue
        // residency, so the sum is not capped by the stage-thread wall
        // budget (and under CI contention it legitimately exceeds it).
        // The busy-time invariant is exactly what the clamped occupancy
        // gauge asserts above; just require the timings to be coherent.
        assert!(
            rep.compute_seconds > 0.0 && rep.wall_seconds > 0.0,
            "{mode:?}: compute {} and wall {} must both be positive",
            rep.compute_seconds,
            rep.wall_seconds
        );
    }
}
