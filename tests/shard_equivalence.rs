//! Sharded-serving acceptance suites (see DESIGN.md §14):
//!
//! * **Equivalence** — a sharded store behind `BatchedEngine::new_sharded`
//!   produces *bitwise-identical* logits to a single-store engine over the
//!   union of the same rows, for shard counts 1/2/4, on fixed and arbitrary
//!   (proptest) graphs; and `serve_sharded` at one shard reproduces
//!   `serve_multi`'s deterministic counters exactly, including under a
//!   second-generation fault grammar.
//! * **Accretion** — `ShardedStore::accrete` invalidates exactly the L-hop
//!   reverse dependency cone of the new edges: surviving rows bitwise-match
//!   a full recompute on the post-accretion graph (a stale read is
//!   impossible), and rows outside the cone survive (no `clear()`).

use gcnp::prelude::*;
use gcnp_tensor::init::seeded_rng;
use proptest::prelude::*;
use rand::RngExt;

fn chord_graph(n: usize) -> CsrMatrix {
    let mut e = Vec::new();
    for i in 0..n as u32 {
        for hop in [1u32, 7] {
            let j = (i + hop) % n as u32;
            e.push((i, j));
            e.push((j, i));
        }
    }
    CsrMatrix::adjacency(n, &e)
}

/// Populate a single store and a sharded store with the *same* rows (exact
/// hidden features of every 3rd node), so their unions are identical.
fn mirror_stores(hs: &[Matrix], n_layers: usize, single: &FeatureStore, sharded: &ShardedStore) {
    for level in 1..n_layers {
        let h = &hs[level - 1];
        for v in (0..h.rows()).step_by(3) {
            single.put(level, v, h.row(v)).unwrap();
            sharded.put(level, v, h.row(v)).unwrap();
        }
    }
}

/// Drive the same sub-batch sequence through a single-store engine and the
/// per-shard engines, asserting bitwise-equal logits after every batch
/// (write-backs included: both sides run `StorePolicy::Roots`, so stores
/// evolve in lockstep and later batches read earlier batches' rows).
fn assert_bitwise_equivalent(
    adj: &CsrMatrix,
    x: &Matrix,
    model: &GnnModel,
    hs: &[Matrix],
    n_shards: usize,
    seed: u64,
) {
    let n = adj.n_rows();
    let p = Partition::hash(n, n_shards, seed);
    let single = FeatureStore::new(n, model.n_layers() - 1);
    let sharded = ShardedStore::new(&p.assign, n_shards, model.n_layers() - 1);
    mirror_stores(hs, model.n_layers(), &single, &sharded);

    let mut base = BatchedEngine::new(model, adj, x, vec![], Some(&single), StorePolicy::Roots, 0);
    let mut shard_engines: Vec<BatchedEngine<'_>> = (0..n_shards)
        .map(|s| {
            BatchedEngine::new_sharded(model, adj, x, vec![], &sharded, s, StorePolicy::Roots, 0)
        })
        .collect();

    // Three rounds over sliding windows so reuse kicks in mid-run.
    for round in 0..3usize {
        for chunk in (0..n).collect::<Vec<_>>().chunks(17 + round) {
            for (s, shard_engine) in shard_engines.iter_mut().enumerate() {
                let sub: Vec<usize> = chunk
                    .iter()
                    .copied()
                    .filter(|&v| p.assign[v] as usize == s)
                    .collect();
                if sub.is_empty() {
                    continue;
                }
                let a = base.infer(&sub);
                let b = shard_engine.infer(&sub);
                assert_eq!(a.targets, b.targets);
                assert_eq!(
                    a.logits.as_slice(),
                    b.logits.as_slice(),
                    "logits diverge at {n_shards} shards (round {round}, shard {s})"
                );
                assert_eq!(a.store_hits, b.store_hits, "reuse diverges");
                assert_eq!(a.n_supporting, b.n_supporting, "expansion diverges");
            }
        }
    }
    // The stores evolved in lockstep too: same resident totals per level.
    for level in 1..model.n_layers() {
        assert_eq!(single.len(level), sharded.len(level), "level {level}");
    }
    assert_eq!(single.nbytes(), sharded.nbytes());
}

/// Acceptance: shard counts 1, 2 and 4 all serve bitwise-identical logits
/// to the single-store engine, with identical reuse and expansion counters.
#[test]
fn sharded_logits_bitwise_equal_across_shard_counts() {
    let n = 120;
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut seeded_rng(11));
    let model = zoo::graphsage(8, 16, 4, 7);
    let norm = adj.normalized(Normalization::Row);
    let hs = model.forward_collect(Some(&norm), &x);
    for n_shards in [1, 2, 4] {
        assert_bitwise_equivalent(&adj, &x, &model, &hs, n_shards, 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The bitwise-equivalence property holds on arbitrary graphs and
    /// partition seeds, not just the fixed chord graph.
    #[test]
    fn sharded_equivalence_holds_on_arbitrary_graphs(
        n in 12usize..48,
        gseed in 0u64..200,
        pseed in 0u64..50,
    ) {
        let mut edges = Vec::new();
        let mut rng = seeded_rng(gseed);
        for v in 0..n as u32 {
            edges.push((v, (v + 1) % n as u32));
            edges.push(((v + 1) % n as u32, v));
            let w: usize = rng.random_range(0..n);
            if w as u32 != v {
                edges.push((v, w as u32));
                edges.push((w as u32, v));
            }
        }
        let adj = CsrMatrix::adjacency(n, &edges);
        let x = Matrix::rand_uniform(n, 6, -1.0, 1.0, &mut rng);
        let model = zoo::graphsage(6, 8, 3, gseed);
        let norm = adj.normalized(Normalization::Row);
        let hs = model.forward_collect(Some(&norm), &x);
        for n_shards in [2, 4] {
            assert_bitwise_equivalent(&adj, &x, &model, &hs, n_shards, pseed);
        }
    }
}

fn serving_setup(n: usize) -> (CsrMatrix, Matrix, GnnModel) {
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut seeded_rng(11));
    let model = zoo::graphsage(8, 16, 4, 13);
    (adj, x, model)
}

/// `serve_sharded` at one shard is `serve_multi` at one worker: identical
/// deterministic counters, clean and under a gen-2 fault schedule, in both
/// executors.
#[test]
fn one_shard_serving_matches_single_worker_serve_multi() {
    let n = 200;
    let (adj, x, model) = serving_setup(n);
    let pool: Vec<usize> = (0..n).collect();
    let assign = Partition::hash(n, 1, 0).assign;
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 32,
            n_requests: 300,
            seed: 21,
            pipeline: mode,
            ..Default::default()
        };
        let run = |plan: Option<&FaultPlan>, sharded: bool| -> MultiServingReport {
            let levels = model.n_layers() - 1;
            let single = FeatureStore::new(n, levels);
            let shards = ShardedStore::new(&assign, 1, levels);
            let inj = plan.map(|p| p.build().unwrap());
            let mut engine = if sharded {
                BatchedEngine::new_sharded(
                    &model,
                    &adj,
                    &x,
                    vec![],
                    &shards,
                    0,
                    StorePolicy::Roots,
                    0,
                )
            } else {
                BatchedEngine::new(
                    &model,
                    &adj,
                    &x,
                    vec![],
                    Some(&single),
                    StorePolicy::Roots,
                    0,
                )
            };
            if let Some(inj) = &inj {
                engine.set_faults(std::sync::Arc::clone(inj));
            }
            let mut engines = vec![engine];
            if sharded {
                serve_sharded(&mut engines, &assign, &pool, &cfg).unwrap()
            } else {
                serve_multi(&mut engines, &pool, &cfg).unwrap()
            }
        };
        let clean_multi = run(None, false);
        let clean_shard = run(None, true);
        assert_eq!(
            clean_multi.counters(),
            clean_shard.counters(),
            "{mode:?} clean"
        );
        assert_eq!(clean_shard.served, 300);

        // Gen-2 grammar: silent row corruption, clock skew, a store-miss
        // storm. Same seeded schedule on both paths.
        let plan = FaultPlan {
            row_flips: 2,
            skews: 2,
            skew: 3.0,
            storms: 1,
            horizon: clean_multi.n_batches as u64 + 4,
            seed: 77,
            ..Default::default()
        };
        let chaos_multi = run(Some(&plan), false);
        let chaos_shard = run(Some(&plan), true);
        assert_eq!(
            chaos_multi.counters(),
            chaos_shard.counters(),
            "{mode:?} chaos"
        );
        assert_eq!(
            chaos_shard.served + chaos_shard.shed,
            300,
            "every request served or shed"
        );
    }
}

/// Sharded serving at 2 and 4 shards is lossless and deterministic under
/// the gen-2 fault grammar, with served/shed equal to the single-store
/// fleet's (everything served: the retry cap absorbs the whole schedule).
#[test]
fn sharded_serving_is_lossless_and_deterministic_under_gen2_faults() {
    let n = 240;
    let (adj, x, model) = serving_setup(n);
    let pool: Vec<usize> = (0..n).collect();
    let cfg = ServingConfig {
        arrival_rate: 1e6,
        max_batch: 32,
        n_requests: 400,
        seed: 9,
        ..Default::default()
    };
    let plan = FaultPlan {
        row_flips: 3,
        skews: 2,
        skew: 2.5,
        storms: 1,
        horizon: 64,
        seed: 31,
        ..Default::default()
    };

    // Single-store baseline for the served/shed comparison.
    let levels = model.n_layers() - 1;
    let single = FeatureStore::new(n, levels);
    let inj = plan.build().unwrap();
    let mut base = vec![{
        let mut e = BatchedEngine::new(
            &model,
            &adj,
            &x,
            vec![],
            Some(&single),
            StorePolicy::Roots,
            0,
        );
        e.set_faults(std::sync::Arc::clone(&inj));
        e
    }];
    let baseline = serve_multi(&mut base, &pool, &cfg).unwrap();
    assert_eq!(baseline.served, 400, "retry cap absorbs the schedule");

    for n_shards in [2usize, 4] {
        let p = Partition::hash(n, n_shards, 3);
        let run = || -> MultiServingReport {
            let store = ShardedStore::new(&p.assign, n_shards, levels);
            let inj = plan.build().unwrap();
            let mut engines: Vec<BatchedEngine<'_>> = (0..n_shards)
                .map(|s| {
                    let mut e = BatchedEngine::new_sharded(
                        &model,
                        &adj,
                        &x,
                        vec![],
                        &store,
                        s,
                        StorePolicy::Roots,
                        s as u64,
                    );
                    e.set_faults(std::sync::Arc::clone(&inj));
                    e
                })
                .collect();
            serve_sharded(&mut engines, &p.assign, &pool, &cfg).unwrap()
        };
        let a = run();
        assert_eq!(a.n_workers, n_shards);
        assert_eq!(
            a.served + a.shed + a.shed_queue + a.shed_deadline,
            400,
            "{n_shards} shards: nothing lost"
        );
        assert_eq!(
            (a.served, a.shed),
            (baseline.served, baseline.shed),
            "{n_shards} shards: served/shed match the single-store fleet"
        );
        // Re-running the same seed must reproduce the *request accounting*
        // exactly. The fault-side tallies (retries/recoveries) are not
        // compared: the shared injector schedules faults by global attempt
        // index, and which shard's batch occupies an index depends on
        // worker interleaving once S >= 2.
        let b = run();
        assert_eq!(
            b.served + b.shed + b.shed_queue + b.shed_deadline,
            400,
            "{n_shards} shards: nothing lost on re-run"
        );
        assert_eq!(
            (a.served, a.shed, a.n_requests, a.n_workers),
            (b.served, b.shed, b.n_requests, b.n_workers),
            "{n_shards} shards: same-seed runs serve identically"
        );
    }
}

/// Supervision is rejected with a typed error, not silently ignored.
#[test]
fn sharded_serving_rejects_supervision_config() {
    let n = 40;
    let (adj, x, model) = serving_setup(n);
    let pool: Vec<usize> = (0..n).collect();
    let assign = Partition::hash(n, 2, 0).assign;
    let store = ShardedStore::new(&assign, 2, model.n_layers() - 1);
    let mut engines: Vec<BatchedEngine<'_>> = (0..2)
        .map(|s| {
            BatchedEngine::new_sharded(&model, &adj, &x, vec![], &store, s, StorePolicy::Roots, 0)
        })
        .collect();
    let cfg = ServingConfig {
        watchdog: Some(0.5),
        ..Default::default()
    };
    assert!(matches!(
        serve_sharded(&mut engines, &assign, &pool, &cfg),
        Err(ServingError::InvalidConfig(_))
    ));
}

/// Accretion acceptance: appending edges invalidates exactly the reverse
/// L-hop dependency cone — every surviving row bitwise-matches a full
/// recompute on the post-accretion graph (stale reads are impossible), rows
/// outside the cone survive, and the report pins the per-level dirty sizes.
#[test]
fn accretion_invalidates_only_the_dependency_cone() {
    let n = 60;
    let model = zoo::graphsage(6, 8, 3, 1);
    let levels = model.n_layers() - 1; // 2 stored levels
    let x = Matrix::rand_uniform(n, 6, -1.0, 1.0, &mut seeded_rng(4));

    // The pre-accretion snapshot, built through the growing graph.
    let mut growing = GrowingGraph::new(n);
    let mut init = Vec::new();
    for i in 0..n as u32 {
        for hop in [1u32, 7] {
            let j = (i + hop) % n as u32;
            init.push((i, j));
            init.push((j, i));
        }
    }
    let adj0 = growing.accrete(&init).clone();
    let hs0 = model.forward_collect(Some(&adj0.normalized(Normalization::Row)), &x);

    let p = Partition::hash(n, 3, 8);
    let store = ShardedStore::new(&p.assign, 3, levels);
    for level in 1..=levels {
        for v in 0..n {
            store.put(level, v, hs0[level - 1].row(v)).unwrap();
        }
    }
    assert_eq!(store.len(1), n);
    let epoch0 = store.epoch();

    // Accrete two fresh edges mid-stream.
    let new_edges: Vec<(u32, u32)> = vec![(0, 30), (30, 0), (5, 45), (45, 5)];
    let adj1 = growing.accrete(&new_edges).clone();
    let report = store.accrete(&new_edges, &adj1); // symmetric: adj is its own reverse

    // Independently derive the expected cone on the post-accretion graph.
    let d1: std::collections::BTreeSet<usize> = [0usize, 30, 5, 45].into_iter().collect();
    let mut d2 = d1.clone();
    for &v in &d1 {
        for &u in adj1.row_indices(v) {
            d2.insert(u as usize);
        }
    }
    assert_eq!(report.dirty_per_level, vec![d1.len(), d2.len()]);
    assert_eq!(
        report.removed,
        d1.len() + d2.len(),
        "all dirty rows were resident"
    );
    assert_eq!(report.epoch, epoch0 + 1);
    assert_eq!(store.epoch(), report.epoch, "visibility barrier published");

    // Level 1: exactly D1 invalidated. Level 2: exactly D2.
    for v in 0..n {
        assert_eq!(store.has(1, v), !d1.contains(&v), "level 1 node {v}");
        assert_eq!(store.has(2, v), !d2.contains(&v), "level 2 node {v}");
    }

    // No stale reads: every surviving row bitwise-equals the full
    // recompute on the new graph. And the walk was necessary: inside the
    // cone the recompute genuinely differs from the stale values.
    let hs1 = model.forward_collect(Some(&adj1.normalized(Normalization::Row)), &x);
    for level in 1..=levels {
        for v in 0..n {
            if let Some(row) = store.with_row(level, v, |r| r.to_vec()) {
                assert_eq!(
                    row.as_slice(),
                    hs1[level - 1].row(v),
                    "level {level} node {v}"
                );
            }
        }
    }
    let stale_somewhere = d1.iter().any(|&v| hs0[0].row(v) != hs1[0].row(v));
    assert!(
        stale_somewhere,
        "the accreted edges must actually change some invalidated row"
    );

    // Serving on the post-accretion graph mixes surviving rows with fresh
    // recomputation of the cone — results match full inference.
    let mut engines: Vec<BatchedEngine<'_>> = (0..3)
        .map(|s| {
            BatchedEngine::new_sharded(&model, &adj1, &x, vec![], &store, s, StorePolicy::Roots, 0)
        })
        .collect();
    let full = model.forward_full(Some(&adj1.normalized(Normalization::Row)), &x);
    for (s, engine) in engines.iter_mut().enumerate() {
        let targets: Vec<usize> = (0..n).filter(|&v| p.assign[v] as usize == s).collect();
        let res = engine.infer(&targets);
        assert!(res.store_hits > 0, "surviving rows are reused");
        for (i, &t) in res.targets.iter().enumerate() {
            for c in 0..3 {
                assert!(
                    (res.logits.get(i, c) - full.get(t, c)).abs() < 1e-3,
                    "node {t} class {c}"
                );
            }
        }
    }
}
