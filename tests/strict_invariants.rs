//! Runtime invariant layer under `--features strict-invariants`.
//!
//! Corrupted inputs must surface as typed [`ServingError::InvariantViolation`]
//! values at the engine boundary — never as panics — so the serving loop can
//! count them and keep going. Run with:
//! `cargo test -q --features strict-invariants --test strict_invariants`
#![cfg(feature = "strict-invariants")]

use gcnp::prelude::*;

fn ring(n: usize) -> CsrMatrix {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i as u32, ((i + 1) % n) as u32));
        edges.push((((i + 1) % n) as u32, i as u32));
    }
    CsrMatrix::adjacency(n, &edges)
}

#[test]
fn nan_feature_row_yields_typed_error_not_panic() {
    let n = 12;
    let adj = ring(n);
    let mut rng = gcnp_tensor::init::seeded_rng(7);
    let mut x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut rng);
    // Poison one feature of a node inside the batch's support.
    x.set(3, 2, f32::NAN);
    let model = zoo::graphsage(8, 8, 3, 7);
    let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 7);
    let err = engine
        .try_infer(&[2, 3, 4])
        .expect_err("NaN input must be rejected");
    match err {
        ServingError::InvariantViolation { check, detail } => {
            assert_eq!(check, "engine.features.finite");
            assert!(detail.contains("NaN"), "detail should name NaN: {detail}");
        }
        other => panic!("expected InvariantViolation, got {other:?}"),
    }
}

#[test]
fn mis_shaped_feature_matrix_yields_typed_error_not_panic() {
    let n = 12;
    let adj = ring(n);
    let mut rng = gcnp_tensor::init::seeded_rng(9);
    // One row short: the graph has 12 nodes, the matrix 11 rows.
    let x = Matrix::rand_uniform(n - 1, 8, -1.0, 1.0, &mut rng);
    let model = zoo::graphsage(8, 8, 3, 9);
    let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 9);
    let err = engine
        .try_infer(&[0, 1])
        .expect_err("shape mismatch must be rejected");
    match err {
        ServingError::InvariantViolation { check, .. } => {
            assert_eq!(check, "engine.features.rows");
        }
        other => panic!("expected InvariantViolation, got {other:?}"),
    }
}

#[test]
fn engine_stays_usable_after_invariant_violation() {
    let n = 12;
    let adj = ring(n);
    let mut rng = gcnp_tensor::init::seeded_rng(11);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut rng);
    let model = zoo::graphsage(8, 8, 3, 11);

    // First engine: wrong shape fails, then a fresh engine over good data
    // (same model) still serves — the error path must not poison state.
    let short = Matrix::rand_uniform(n - 1, 8, -1.0, 1.0, &mut rng);
    let mut bad = BatchedEngine::new(&model, &adj, &short, vec![], None, StorePolicy::None, 11);
    assert!(bad.try_infer(&[0]).is_err());

    let mut good = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 11);
    let res = good.try_infer(&[0, 5]).expect("clean batch serves");
    assert_eq!(res.targets, vec![0, 5]);
    assert!(res.logits.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn store_put_out_of_bounds_is_typed() {
    let store = FeatureStore::new(8, 2);
    let row = Matrix::filled(1, 4, 1.0);
    let err = store
        .put(1, 99, row.row(0))
        .expect_err("out-of-range node must be rejected");
    assert!(matches!(
        err,
        ServingError::InvariantViolation {
            check: "store.put.bounds",
            ..
        }
    ));
}
