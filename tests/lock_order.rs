//! Runtime lock-order validation under `--features lock-order`.
//!
//! The tracker in `gcnp_tensor::lockcheck` checks every registered
//! acquisition against the statically-extracted graph in
//! `gcnp_tensor::lockgraph`. These tests prove both directions: a
//! deliberately inverted acquisition panics with the typed message, and a
//! fully supervised, fault-injected serving run drives every instrumented
//! site without tripping the tracker. Run with:
//! `cargo test -q --features lock-order --test lock_order`
#![cfg(feature = "lock-order")]

use gcnp::prelude::*;
use gcnp_tensor::init::seeded_rng;
use gcnp_tensor::lockcheck;
use gcnp_tensor::lockgraph::{LOCK_NODES, LOCK_ORDER_PATHS};
use std::panic::{self, AssertUnwindSafe};

/// Run `f` with the default panic hook silenced, returning the payload of
/// the panic it raised (the tests below *expect* panics; the hook would
/// spam the test log with backtraces otherwise).
fn panic_message(f: impl FnOnce() + panic::UnwindSafe) -> String {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let caught = panic::catch_unwind(f);
    panic::set_hook(hook);
    match caught {
        Ok(()) => String::new(),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    }
}

#[test]
fn a_deliberate_inversion_is_caught() {
    // The static graph orders `from` before `to` for every closure path;
    // acquiring them in the opposite order must trip the tracker.
    let &(from, to) = LOCK_ORDER_PATHS
        .first()
        .expect("the workspace graph has at least one ordered pair");
    let later = LOCK_NODES[to as usize];
    let earlier = LOCK_NODES[from as usize];
    let msg = panic_message(AssertUnwindSafe(|| {
        let _second = lockcheck::acquire(later);
        let _first = lockcheck::acquire(earlier); // inverted — must panic
    }));
    assert!(
        msg.contains("lock-order inversion"),
        "expected the typed inversion panic, got: {msg:?}"
    );
    assert!(
        msg.contains(earlier) && msg.contains(later),
        "the panic names both locks: {msg:?}"
    );
}

#[test]
fn graph_order_and_disjoint_reacquisition_stay_green() {
    // Acquiring along a graph path is fine, and releasing between
    // acquisitions resets the thread's held set.
    let &(from, to) = LOCK_ORDER_PATHS.first().expect("non-empty closure");
    let first = lockcheck::acquire(LOCK_NODES[from as usize]);
    let second = lockcheck::acquire(LOCK_NODES[to as usize]);
    drop(second);
    drop(first);
    // The previously "inverted" order is legal once nothing is held.
    let only = lockcheck::acquire(LOCK_NODES[to as usize]);
    drop(only);
    let only = lockcheck::acquire(LOCK_NODES[from as usize]);
    drop(only);
}

#[test]
fn an_unregistered_name_is_rejected() {
    let msg = panic_message(|| {
        let _t = lockcheck::acquire("no.such.lock");
    });
    assert!(
        msg.contains("unregistered lock"),
        "expected the typed registry panic, got: {msg:?}"
    );
}

fn chord_graph(n: usize) -> CsrMatrix {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i as u32, ((i + 1) % n) as u32));
        edges.push((((i + 1) % n) as u32, i as u32));
        edges.push((i as u32, ((i + n / 3) % n) as u32));
    }
    CsrMatrix::adjacency(n, &edges)
}

/// End-to-end: a supervised, fault-injected pipelined run exercises every
/// instrumented site (stage queues, dispatch, rails, pending slots, pool,
/// latches, fleet estimators, store stripes) with the tracker live — any
/// inversion on a real path would panic the run.
#[test]
fn supervised_faulted_serving_runs_clean_under_the_tracker() {
    let n = 200;
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut seeded_rng(11));
    let model = zoo::graphsage(8, 16, 4, 13);
    let pool: Vec<usize> = (0..n).collect();
    let plan = FaultPlan {
        panics: 1,
        stragglers: 1,
        straggle_multiplier: 1.5,
        stalls: 1,
        stall_ms: 40.0,
        row_flips: 1,
        horizon: 8,
        seed: 41,
        ..Default::default()
    };
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 32,
            n_requests: 320,
            seed: 37,
            pipeline: mode,
            watchdog: Some(0.5),
            hedge: Some(8.0),
            ..Default::default()
        };
        let store = FeatureStore::new(n, model.n_layers() - 1);
        let inj = plan.build().unwrap();
        let mut engines: Vec<BatchedEngine> = (0..3)
            .map(|w| {
                let mut e = BatchedEngine::new(
                    &model,
                    &adj,
                    &x,
                    vec![],
                    Some(&store),
                    StorePolicy::Roots,
                    w as u64,
                );
                e.set_faults(std::sync::Arc::clone(&inj));
                e
            })
            .collect();
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        assert_eq!(
            rep.served + rep.shed,
            320,
            "{mode:?}: the tracked run stays lossless"
        );
    }
}
