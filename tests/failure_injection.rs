//! Failure-injection and edge-case tests across crate boundaries: empty
//! graphs, isolated nodes, degenerate budgets, zero-signal features, and
//! serialization round-trips.

use gcnp::prelude::*;
use gcnp_datasets::SynthConfig;

#[test]
fn inference_on_edgeless_graph() {
    // A graph with no edges: every aggregation is zero; the model must
    // still produce finite logits (it degenerates to the self branch).
    let adj = CsrMatrix::empty(10, 10);
    let x = Matrix::filled(10, 6, 0.5);
    let model = zoo::graphsage(6, 8, 3, 1);
    let norm = adj.normalized(Normalization::Row);
    let out = model.forward_full(Some(&norm), &x);
    assert_eq!(out.shape(), (10, 3));
    assert!(out.as_slice().iter().all(|v| v.is_finite()));

    // Batched inference agrees.
    let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let res = engine.infer(&[0, 5]);
    for (i, &t) in res.targets.iter().enumerate() {
        for c in 0..3 {
            assert!((res.logits.get(i, c) - out.get(t, c)).abs() < 1e-4);
        }
    }
}

#[test]
fn isolated_target_in_connected_graph() {
    // Node 4 has no edges; the rest form a path.
    let adj = CsrMatrix::adjacency(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
    let x = Matrix::filled(5, 4, 1.0);
    let model = zoo::graphsage(4, 8, 2, 2);
    let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let res = engine.infer(&[4]);
    assert_eq!(res.logits.rows(), 1);
    assert!(res.logits.as_slice().iter().all(|v| v.is_finite()));
    // Its supporting set is itself only.
    assert_eq!(res.n_supporting, 1);
}

#[test]
fn pruning_with_all_zero_channels() {
    // Channels that are exactly zero everywhere must be pruned first and
    // the reconstruction must stay exact.
    let mut rng = gcnp_tensor::init::seeded_rng(3);
    let mut x = Matrix::rand_uniform(64, 8, -1.0, 1.0, &mut rng);
    for r in 0..64 {
        x.set(r, 2, 0.0);
        x.set(r, 6, 0.0);
    }
    let w = Matrix::rand_uniform(8, 3, -1.0, 1.0, &mut rng);
    let cfg = PrunerConfig {
        beta_epochs: 20,
        w_epochs: 20,
        batch_size: 32,
        ..Default::default()
    };
    let out = lasso_prune(std::slice::from_ref(&x), std::slice::from_ref(&w), 6, &cfg);
    assert!(
        !out.keep.contains(&2) && !out.keep.contains(&6),
        "zero channels pruned: {:?}",
        out.keep
    );
    assert!(out.rel_error < 1e-3, "rel error {}", out.rel_error);
}

#[test]
fn minimum_budget_keeps_one_channel() {
    // A budget that rounds to zero channels must clamp to one.
    let data = SynthConfig {
        nodes: 100,
        classes: 2,
        communities: 2,
        attr_dim: 8,
        ..Default::default()
    }
    .generate(4);
    let model = zoo::graphsage(8, 4, 2, 5);
    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let cfg = PrunerConfig {
        beta_epochs: 3,
        w_epochs: 3,
        batch_size: 32,
        ..Default::default()
    };
    // budget 0.01 of 4 hidden channels -> floor 0 -> clamped to 1.
    let (pruned, report) = prune_model(&model, &tadj, &tx, 0.01, Scheme::FullInference, &cfg);
    for lr in &report.layers {
        assert_eq!(lr.kept, 1);
    }
    let adj = data.adj.normalized(Normalization::Row);
    let out = pruned.forward_full(Some(&adj), &data.features);
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn store_rejects_wrong_width() {
    // Reading a stored row of the wrong width must fail loudly, not corrupt —
    // as a typed error on the fallible path, so serving loops can shed the
    // request instead of dying.
    let adj = CsrMatrix::adjacency(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
    let x = Matrix::filled(4, 4, 1.0);
    let model = zoo::graphsage(4, 8, 2, 6);
    let store = FeatureStore::new(4, 2);
    store.put(1, 1, &[1.0, 2.0]).unwrap(); // wrong width: layer 1 emits 8 channels
    let mut engine =
        BatchedEngine::new(&model, &adj, &x, vec![], Some(&store), StorePolicy::None, 0);
    assert_eq!(
        engine.try_infer(&[0]).unwrap_err(),
        ServingError::StoreWidthMismatch {
            level: 1,
            expected: 8,
            got: 2
        }
    );
    // The infallible wrapper keeps the old fail-loud contract.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.infer(&[0])));
    assert!(result.is_err(), "width mismatch must panic via infer()");
}

#[test]
fn multilabel_dataset_with_rare_positives_trains() {
    let data = SynthConfig {
        nodes: 200,
        classes: 20,
        communities: 4,
        attr_dim: 16,
        multi_label: true,
        ..Default::default()
    }
    .generate(7);
    let mut model = zoo::graphsage(16, 8, 20, 8);
    let cfg = TrainConfig {
        steps: 20,
        eval_every: 10,
        saint_roots: 40,
        ..Default::default()
    };
    let stats = Trainer::train_saint(&mut model, &data, &cfg);
    assert!(stats.final_train_loss.is_finite());
}

#[test]
fn model_serde_round_trip() {
    let data = SynthConfig {
        nodes: 80,
        classes: 2,
        communities: 2,
        attr_dim: 8,
        ..Default::default()
    }
    .generate(9);
    let model = zoo::graphsage(8, 4, 2, 10);
    let json = serde_json::to_string(&model).expect("serialize");
    let back: GnnModel = serde_json::from_str(&json).expect("deserialize");
    let adj = data.adj.normalized(Normalization::Row);
    assert_eq!(
        model.forward_full(Some(&adj), &data.features),
        back.forward_full(Some(&adj), &data.features)
    );
}

#[test]
fn pruned_model_serde_round_trip_keeps_keep_lists() {
    let data = SynthConfig {
        nodes: 100,
        classes: 2,
        communities: 2,
        attr_dim: 12,
        ..Default::default()
    }
    .generate(11);
    let model = zoo::graphsage(12, 8, 2, 12);
    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let cfg = PrunerConfig {
        beta_epochs: 3,
        w_epochs: 3,
        batch_size: 32,
        ..Default::default()
    };
    let (pruned, _) = prune_model(&model, &tadj, &tx, 0.5, Scheme::BatchedInference, &cfg);
    let back: GnnModel = serde_json::from_str(&serde_json::to_string(&pruned).unwrap()).unwrap();
    assert_eq!(
        pruned.layers[0].branches[1].keep, back.layers[0].branches[1].keep,
        "keep lists survive serialization"
    );
    let adj = data.adj.normalized(Normalization::Row);
    assert_eq!(
        pruned.forward_full(Some(&adj), &data.features),
        back.forward_full(Some(&adj), &data.features)
    );
}

#[test]
fn single_node_batch_and_repeated_serving() {
    let data = SynthConfig {
        nodes: 150,
        classes: 3,
        communities: 3,
        attr_dim: 8,
        ..Default::default()
    }
    .generate(13);
    let model = zoo::graphsage(8, 8, 3, 14);
    let store = FeatureStore::new(150, 2);
    let mut engine = BatchedEngine::new(
        &model,
        &data.adj,
        &data.features,
        vec![None, Some(4)],
        Some(&store),
        StorePolicy::Roots,
        0,
    );
    // Single-node batches, served repeatedly: results must be identical
    // once the node's own features are stored (fresh store = exact rows).
    let a = engine.infer(&[42]);
    let b = engine.infer(&[42]);
    assert_eq!(a.logits.shape(), (1, 3));
    // b reads the stored h-levels for node 42, which were computed from the
    // capped neighborhood in pass a; outputs stay finite and close.
    assert!(b.logits.as_slice().iter().all(|v| v.is_finite()));
    assert!(b.store_hits > 0);
}

#[test]
fn empty_target_slice_is_rejected_gracefully() {
    let data = SynthConfig {
        nodes: 50,
        classes: 2,
        communities: 2,
        attr_dim: 8,
        ..Default::default()
    }
    .generate(15);
    let model = zoo::graphsage(8, 4, 2, 16);
    let mut engine = BatchedEngine::new(
        &model,
        &data.adj,
        &data.features,
        vec![],
        None,
        StorePolicy::None,
        0,
    );
    let res = engine.infer(&[]);
    assert_eq!(res.logits.rows(), 0);
    assert_eq!(res.targets.len(), 0);
}
