//! Property-based tests of the pruning framework's invariants.

use gcnp::prelude::*;
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = (Matrix, Matrix, u64)> {
    // (n rows, c channels, f outputs) within small bounds, plus a seed.
    (4usize..40, 2usize..12, 1usize..6, 0u64..1000).prop_map(|(n, c, f, seed)| {
        let mut rng = gcnp_tensor::init::seeded_rng(seed);
        let x = Matrix::rand_uniform(n, c, -1.0, 1.0, &mut rng);
        let w = Matrix::rand_uniform(c, f, -1.0, 1.0, &mut rng);
        (x, w, seed)
    })
}

fn fast_cfg(method: PruneMethod, seed: u64) -> PrunerConfig {
    PrunerConfig {
        method,
        beta_epochs: 5,
        w_epochs: 5,
        batch_size: 16,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The outcome always keeps exactly the requested number of channels,
    /// sorted and in range, with compact weights of matching shape.
    #[test]
    fn budget_is_exact((x, w, seed) in arb_problem(), frac in 0.1f32..1.0) {
        let c = x.cols();
        let n_keep = ((c as f32 * frac) as usize).clamp(1, c);
        for method in [PruneMethod::Lasso, PruneMethod::MaxResponse, PruneMethod::Random] {
            let out = lasso_prune(std::slice::from_ref(&x), std::slice::from_ref(&w), n_keep, &fast_cfg(method, seed));
            prop_assert_eq!(out.keep.len(), n_keep);
            prop_assert!(out.keep.windows(2).all(|p| p[0] < p[1]), "sorted unique");
            prop_assert!(out.keep.iter().all(|&k| k < c));
            prop_assert_eq!(out.weights[0].shape(), (n_keep, w.cols()));
            prop_assert!(out.weights[0].as_slice().iter().all(|v| v.is_finite()));
        }
    }

    /// Keeping every channel is lossless for every method.
    #[test]
    fn full_budget_lossless((x, w, seed) in arb_problem()) {
        for method in [PruneMethod::Lasso, PruneMethod::MaxResponse, PruneMethod::Random] {
            let out = lasso_prune(std::slice::from_ref(&x), std::slice::from_ref(&w), x.cols(), &fast_cfg(method, seed));
            let pred = x.select_cols(&out.keep).matmul(&out.weights[0]);
            let target = x.matmul(&w);
            prop_assert!(pred.approx_eq(&target, 1e-4));
        }
    }

    /// The relative reconstruction error never exceeds ~1 by much: the
    /// Ŵ-step can always fall back to the warm start, and predicting from a
    /// channel subset can't be arbitrarily worse than predicting Y itself.
    #[test]
    fn rel_error_is_bounded((x, w, seed) in arb_problem(), frac in 0.2f32..0.9) {
        let n_keep = ((x.cols() as f32 * frac) as usize).clamp(1, x.cols());
        let out = lasso_prune(&[x], &[w], n_keep, &fast_cfg(PruneMethod::Lasso, seed));
        prop_assert!(out.rel_error.is_finite());
        prop_assert!(out.rel_error >= 0.0);
        prop_assert!(out.rel_error < 10.0, "rel error {} explodes", out.rel_error);
    }

    /// Multi-branch pruning shares one keep set across branches.
    #[test]
    fn shared_keep_across_branches((x, w, seed) in arb_problem(), f2 in 1usize..5) {
        let mut rng = gcnp_tensor::init::seeded_rng(seed ^ 1);
        let w2 = Matrix::rand_uniform(x.cols(), f2, -1.0, 1.0, &mut rng);
        let n_keep = (x.cols() / 2).max(1);
        let out = lasso_prune(
            &[x.clone(), x.clone()],
            &[w.clone(), w2.clone()],
            n_keep,
            &fast_cfg(PruneMethod::Lasso, seed),
        );
        prop_assert_eq!(out.weights.len(), 2);
        prop_assert_eq!(out.weights[0].rows(), n_keep);
        prop_assert_eq!(out.weights[1].rows(), n_keep);
        prop_assert_eq!(out.weights[1].cols(), f2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end pruning at arbitrary budgets always yields a model whose
    /// forward pass has the right shape and finite values.
    #[test]
    fn pruned_model_is_well_formed(budget in 0.1f32..1.0, seed in 0u64..100) {
        let data = gcnp_datasets::SynthConfig {
            nodes: 120,
            classes: 3,
            communities: 3,
            attr_dim: 16,
            ..Default::default()
        }
        .generate(seed);
        let model = zoo::graphsage(16, 8, 3, seed);
        let (tadj, tnodes) = data.train_adj();
        let tadj = tadj.normalized(Normalization::Row);
        let tx = data.features.gather_rows(&tnodes);
        let cfg = PrunerConfig {
            beta_epochs: 3, w_epochs: 3, batch_size: 64, seed, ..Default::default()
        };
        for scheme in [Scheme::FullInference, Scheme::BatchedInference] {
            let (pruned, report) = prune_model(&model, &tadj, &tx, budget, scheme, &cfg);
            let adj = data.adj.normalized(Normalization::Row);
            let out = pruned.forward_full(Some(&adj), &data.features);
            prop_assert_eq!(out.shape(), (120, 3));
            prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(report.weights_after <= report.weights_before);
        }
    }
}
