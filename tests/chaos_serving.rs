//! Chaos and overload tests for the serving layer: deterministic fault
//! injection into multi-worker serving, the pruning-tiered degradation
//! ladder under overload, and serving edge cases. See DESIGN.md "Failure
//! model & degradation ladder".

use gcnp::prelude::*;
use gcnp_tensor::init::seeded_rng;

fn chord_graph(n: usize) -> CsrMatrix {
    let mut e = Vec::new();
    for i in 0..n as u32 {
        for hop in [1u32, 7] {
            let j = (i + hop) % n as u32;
            e.push((i, j));
            e.push((j, i));
        }
    }
    CsrMatrix::adjacency(n, &e)
}

fn setup(n: usize, dim: usize, hidden: usize) -> (CsrMatrix, Matrix, GnnModel) {
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, dim, -1.0, 1.0, &mut seeded_rng(11));
    let model = zoo::graphsage(dim, hidden, 4, 13);
    (adj, x, model)
}

/// Acceptance: a seeded schedule injecting 3 worker panics, 5 straggler
/// batches and 2 store-miss storms into a 4-worker `serve_multi` run loses
/// nothing (served + shed == submitted, shed == 0 since the retry cap
/// covers every panic), the recovery/retry counters match the schedule
/// exactly, and two same-seed runs produce identical reports.
#[test]
fn chaos_run_is_lossless_and_deterministic() {
    let (adj, x, model) = setup(300, 8, 16);
    let pool: Vec<usize> = (0..300).collect();
    // The whole schedule must behave identically under both executors:
    // faults key on the batch attempt index, not on which stage runs it.
    let mut per_mode = Vec::new();
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6, // pre-arrived: batch formation is purely size-capped
            max_batch: 64,
            n_requests: 400,
            seed: 21,
            pipeline: mode,
            ..Default::default()
        };

        // Learn the (deterministic) batch count of this trace from a fault-free
        // run, then size the fault horizon so the whole schedule fires:
        // attempts = batches + one retry per panic.
        let store = FeatureStore::new(300, model.n_layers() - 1);
        let mk_engines =
            |faults: Option<&std::sync::Arc<FaultInjector>>| -> Vec<BatchedEngine<'_>> {
                (0..4)
                    .map(|w| {
                        let mut e = BatchedEngine::new(
                            &model,
                            &adj,
                            &x,
                            vec![],
                            Some(&store),
                            StorePolicy::Roots,
                            w as u64,
                        );
                        if let Some(inj) = faults {
                            e.set_faults(std::sync::Arc::clone(inj));
                        }
                        e
                    })
                    .collect()
            };
        let clean = serve_multi(&mut mk_engines(None), &pool, &cfg).unwrap();
        assert_eq!(clean.served, 400);
        assert_eq!(
            clean.shed + clean.recoveries + clean.failures + clean.retries + clean.workers_lost,
            0
        );

        let plan = FaultPlan {
            panics: 3,
            stragglers: 5,
            straggle_multiplier: 2.0,
            storms: 2,
            horizon: clean.n_batches as u64 + 3,
            seed: 77,
            ..Default::default()
        };
        assert!(
            clean.n_batches >= 7,
            "trace must be long enough to absorb the 10-fault schedule"
        );
        let run = || {
            let inj = plan.build().unwrap();
            let rep = serve_multi(&mut mk_engines(Some(&inj)), &pool, &cfg).unwrap();
            (rep, inj.fired(), inj.attempts())
        };
        let (a, fired_a, attempts_a) = run();

        // Nothing lost, every fault in the schedule fired, counters match it.
        assert_eq!(a.served + a.shed, 400, "every request served or shed");
        assert_eq!(a.shed, 0, "retry cap covers all three panics");
        assert_eq!(fired_a, (3, 5, 2), "full schedule fired: {fired_a:?}");
        assert_eq!(a.recoveries, 3, "one recovery per injected panic");
        assert_eq!(a.retries, 3, "each panicked batch retried once per failure");
        assert_eq!(a.workers_lost, 3, "each panic retires one of the 4 workers");
        assert_eq!(a.failures, 0, "panics are not clean failures");
        assert_eq!(a.n_batches, clean.n_batches);
        assert_eq!(
            attempts_a,
            clean.n_batches as u64 + 3,
            "attempts = batches + retried panics"
        );

        // Same seed ⇒ identical report (all deterministic fields).
        let (b, fired_b, attempts_b) = run();
        assert_eq!(a.counters(), b.counters(), "same-seed chaos runs agree");
        assert_eq!(a.workers_lost, b.workers_lost);
        assert_eq!(fired_a, fired_b);
        assert_eq!(attempts_a, attempts_b);
        per_mode.push((
            a.served,
            a.shed,
            a.recoveries,
            a.retries,
            a.workers_lost,
            a.n_batches,
        ));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "sequential and pipelined executors agree on the chaos accounting"
    );
}

/// If every worker dies, the leftover queue is shed and accounted — the
/// run terminates with served + shed == submitted instead of hanging.
#[test]
fn fleet_wipeout_sheds_the_remaining_queue() {
    let (adj, x, model) = setup(100, 6, 8);
    let pool: Vec<usize> = (0..100).collect();
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 8,
            n_requests: 200,
            seed: 3,
            retry_cap: 0, // a panicked batch is shed immediately
            pipeline: mode,
            ..Default::default()
        };
        // Both workers panic on their very first attempts.
        let plan = FaultPlan {
            panics: 2,
            horizon: 2,
            seed: 5,
            ..Default::default()
        };
        let inj = plan.build().unwrap();
        let mut engines: Vec<BatchedEngine<'_>> = (0..2)
            .map(|w| {
                let mut e =
                    BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, w as u64);
                e.set_faults(std::sync::Arc::clone(&inj));
                e
            })
            .collect();
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        assert_eq!(rep.workers_lost, 2, "{mode:?}: the whole fleet dies");
        assert_eq!(rep.served, 0, "{mode:?}");
        assert_eq!(
            rep.shed, 200,
            "{mode:?}: every request is explicitly shed, none lost"
        );
        assert_eq!(rep.recoveries, 2, "{mode:?}");
        assert_eq!(
            rep.retries, 0,
            "{mode:?}: retry_cap 0 sheds without re-queueing"
        );
    }
}

/// Acceptance: under an overload trace with a deadline, the degradation
/// ladder moves traffic to pruned tiers and keeps the p99 of *served*
/// requests below the deadline, while the same trace without the ladder
/// (full model only) misses it.
#[test]
fn ladder_keeps_p99_under_deadline_where_full_model_misses() {
    let (adj, x, model) = setup(512, 16, 64);
    let norm = adj.normalized(Normalization::Row);
    let pcfg = PrunerConfig {
        beta_epochs: 8,
        w_epochs: 8,
        batch_size: 64,
        ..Default::default()
    };
    let (tier2, _) = prune_model(&model, &norm, &x, 0.5, Scheme::BatchedInference, &pcfg);
    let (tier4, _) = prune_model(&model, &norm, &x, 0.125, Scheme::BatchedInference, &pcfg);
    let pool: Vec<usize> = (0..512).collect();

    // Calibrate a deadline between the full-tier and cheap-tier batch
    // compute times (median of 3 after warmup), so the full model cannot
    // make it but the cheap tier can.
    let median_batch_seconds = |m: &GnnModel| -> f64 {
        let mut e = BatchedEngine::new(m, &adj, &x, vec![], None, StorePolicy::None, 0);
        e.try_infer(&pool[..64]).unwrap(); // warmup
        let mut times: Vec<f64> = (0..3)
            .map(|_| e.try_infer(&pool[..64]).unwrap().seconds)
            .collect();
        times.sort_by(|p, q| p.partial_cmp(q).unwrap());
        times[1]
    };
    let full_c = median_batch_seconds(&model);
    let cheap_c = median_batch_seconds(&tier4);
    assert!(
        full_c > 1.8 * cheap_c,
        "8x channel pruning must buy a clear speedup (full {full_c:.6}s vs pruned {cheap_c:.6}s)"
    );
    let deadline = (full_c * cheap_c).sqrt();

    let cfg = ServingConfig {
        arrival_rate: 1e6, // overload: everything arrives at once
        max_batch: 64,
        n_requests: 600,
        seed: 9,
        deadline: Some(deadline),
        ..Default::default()
    };
    let ladder = LadderPolicy {
        step_down_depth: 64,
        step_up_depth: 8,
        min_dwell: 4,
    };

    let mut tiers = [&model, &tier2, &tier4]
        .map(|m| BatchedEngine::new(m, &adj, &x, vec![], None, StorePolicy::None, 0));
    let with = simulate_tiered(&mut tiers, &pool, &cfg, Some(&ladder)).unwrap();
    assert_eq!(with.served + with.shed_queue + with.shed_deadline, 600);
    assert!(
        with.served > 0,
        "the ladder serves at least the first batches"
    );
    let pruned_traffic: usize = with.tier_served[1..].iter().sum();
    assert!(
        pruned_traffic > with.tier_served[0],
        "overload must push traffic to pruned tiers: {:?}",
        with.tier_served
    );
    assert_eq!(
        with.deadline_misses, 0,
        "every request the ladder serves makes its deadline"
    );
    assert!(
        with.p99_ms < deadline * 1e3,
        "ladder p99 {:.3} ms must beat the {:.3} ms deadline (tiers {:?})",
        with.p99_ms,
        deadline * 1e3,
        with.tier_served
    );

    // Same trace, ladder disabled: the full model's first batch alone blows
    // the deadline, so the p99 of served requests misses it.
    let mut full_only = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let without = simulate(&mut full_only, &pool, &cfg).unwrap();
    assert_eq!(
        without.served + without.shed_queue + without.shed_deadline,
        600
    );
    assert!(
        without.deadline_misses > 0,
        "the un-laddered full model serves its first batch past the deadline"
    );
    assert!(
        without.p99_ms > deadline * 1e3,
        "full-model p99 {:.3} ms should miss the {:.3} ms deadline",
        without.p99_ms,
        deadline * 1e3
    );
}

/// Serving edge cases: both loops complete with full request accounting.
#[test]
fn edge_cases_complete_with_full_accounting() {
    let (adj, x, model) = setup(60, 6, 8);
    let pool: Vec<usize> = (0..60).collect();
    let single = [7usize];
    let cases = [
        (
            "max_batch=1",
            ServingConfig {
                max_batch: 1,
                n_requests: 40,
                ..Default::default()
            },
        ),
        (
            "max_wait=0",
            ServingConfig {
                max_wait: 0.0,
                n_requests: 40,
                ..Default::default()
            },
        ),
        (
            "n_requests<max_batch",
            ServingConfig {
                max_batch: 64,
                n_requests: 5,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in &cases {
        for pool in [&pool[..], &single[..]] {
            let mut engine =
                BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
            let rep = simulate(&mut engine, pool, cfg).unwrap();
            assert_eq!(
                rep.served + rep.shed_queue + rep.shed_deadline,
                cfg.n_requests,
                "simulate accounting for {name}"
            );
            assert_eq!(rep.served, cfg.n_requests, "{name}: nothing to shed");

            for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
                let mut engines: Vec<BatchedEngine<'_>> = (0..2)
                    .map(|w| {
                        BatchedEngine::new(
                            &model,
                            &adj,
                            &x,
                            vec![],
                            None,
                            StorePolicy::None,
                            w as u64,
                        )
                    })
                    .collect();
                let mcfg = ServingConfig {
                    pipeline: mode,
                    ..*cfg
                };
                let rep = serve_multi(&mut engines, pool, &mcfg).unwrap();
                assert_eq!(
                    rep.served + rep.shed,
                    cfg.n_requests,
                    "serve_multi ({mode:?}) accounting for {name}"
                );
            }
        }
    }
    // max_batch=1 really does one request per batch.
    let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let rep = simulate(&mut engine, &pool, &cases[0].1).unwrap();
    assert_eq!(rep.n_batches, 40);
    assert_eq!(rep.mean_batch_size, 1.0);
}

/// Soak test for the CI chaos job (run with `--include-ignored`): several
/// seeds, heavier schedules spanning all seven fault kinds, supervision on
/// for half the seeds — always lossless.
#[test]
#[ignore = "soak test; run explicitly in the CI chaos job"]
fn chaos_soak_across_seeds() {
    let (adj, x, model) = setup(300, 8, 16);
    let store = FeatureStore::new(300, model.n_layers() - 1);
    let pool: Vec<usize> = (0..300).collect();
    for seed in 0..5u64 {
        // Alternate executors across seeds so the soak covers both, and
        // turn the supervisor on for alternating seeds so both the bare
        // retry path and the watchdog/hedge path soak.
        let mode = if seed % 2 == 0 {
            PipelineMode::Pipelined
        } else {
            PipelineMode::Sequential
        };
        let supervised = seed % 2 == 1;
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 32,
            n_requests: 1000,
            seed,
            pipeline: mode,
            watchdog: supervised.then_some(0.25),
            hedge: supervised.then_some(8.0),
            ..Default::default()
        };
        let plan = FaultPlan {
            panics: 3,
            stragglers: 8,
            straggle_multiplier: 2.0,
            storms: 4,
            stalls: 2,
            stall_ms: 20.0,
            row_flips: 2,
            skews: 2,
            skew: 3.0,
            wedges: 2,
            horizon: 30,
            seed: seed ^ 0xc0ffee,
        };
        let inj = plan.build().unwrap();
        let mut engines: Vec<BatchedEngine<'_>> = (0..4)
            .map(|w| {
                let mut e = BatchedEngine::new(
                    &model,
                    &adj,
                    &x,
                    vec![],
                    Some(&store),
                    StorePolicy::Roots,
                    w ^ seed,
                );
                e.set_faults(std::sync::Arc::clone(&inj));
                e
            })
            .collect();
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        assert_eq!(
            rep.served + rep.shed,
            1000,
            "seed {seed}: every request served or shed"
        );
        assert_eq!(rep.recoveries, 3, "seed {seed}: all panics recovered");
        assert!(rep.workers_lost <= 3, "seed {seed}: fleet survives");
        assert_eq!(
            inj.fired_gen2(),
            (2, 2, 2, 2),
            "seed {seed}: the gen-2 schedule fired in full"
        );
        assert_eq!(
            rep.hedges_fired,
            rep.hedges_won + rep.hedges_wasted,
            "seed {seed}: hedge ledger balances"
        );
    }
}
