//! Cross-crate integration tests: the full train → prune → retrain → serve
//! pipeline, and the equivalences the paper's method relies on.

use gcnp::prelude::*;
use gcnp_datasets::SynthConfig;

fn small_dataset(seed: u64) -> Dataset {
    SynthConfig {
        nodes: 400,
        classes: 4,
        communities: 4,
        attr_dim: 32,
        noise: 0.5,
        ..Default::default()
    }
    .generate(seed)
}

fn trained_model(data: &Dataset, seed: u64) -> GnnModel {
    let mut model = zoo::graphsage(data.attr_dim(), 16, data.n_classes(), seed);
    let cfg = TrainConfig {
        steps: 60,
        eval_every: 10,
        saint_roots: 60,
        dropout: 0.0,
        ..Default::default()
    };
    Trainer::train_saint(&mut model, data, &cfg);
    model
}

#[test]
fn train_prune_retrain_preserves_accuracy() {
    let data = small_dataset(1);
    let model = trained_model(&data, 2);
    let adj = data.adj.normalized(Normalization::Row);
    let base_f1 = Trainer::evaluate(&model, Some(&adj), &data.features, &data.labels, &data.test);
    assert!(base_f1 > 0.8, "reference model must learn: {base_f1}");

    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let cfg = PrunerConfig {
        beta_epochs: 20,
        w_epochs: 20,
        batch_size: 128,
        ..Default::default()
    };
    let (mut pruned, report) = prune_model(&model, &tadj, &tx, 0.25, Scheme::FullInference, &cfg);
    assert!(report.weights_after < report.weights_before / 2);

    let tcfg = TrainConfig {
        steps: 80,
        eval_every: 10,
        saint_roots: 60,
        dropout: 0.0,
        ..Default::default()
    };
    Trainer::train_saint(&mut pruned, &data, &tcfg);
    let pruned_f1 = Trainer::evaluate(
        &pruned,
        Some(&adj),
        &data.features,
        &data.labels,
        &data.test,
    );
    assert!(
        pruned_f1 > base_f1 - 0.1,
        "4x pruning + retraining must roughly preserve F1: {pruned_f1} vs {base_f1}"
    );
}

#[test]
fn batched_inference_matches_full_inference_logits() {
    let data = small_dataset(3);
    let model = trained_model(&data, 4);
    let adj = data.adj.normalized(Normalization::Row);
    let full = model.forward_full(Some(&adj), &data.features);

    let mut engine = BatchedEngine::new(
        &model,
        &data.adj,
        &data.features,
        vec![], // no caps: exact equality expected
        None,
        StorePolicy::None,
        0,
    );
    let targets: Vec<usize> = data.test.iter().take(50).copied().collect();
    let res = engine.infer(&targets);
    for (i, &t) in res.targets.iter().enumerate() {
        for c in 0..data.n_classes() {
            let (a, b) = (res.logits.get(i, c), full.get(t, c));
            assert!((a - b).abs() < 1e-3, "node {t} class {c}: {a} vs {b}");
        }
    }
}

#[test]
fn store_round_trip_preserves_batched_logits() {
    let data = small_dataset(5);
    let model = trained_model(&data, 6);
    let adj = data.adj.normalized(Normalization::Row);
    let engine = FullEngine::new(&model, Some(&adj));
    let hs = engine.hidden(&data.features);

    // Exact hidden features stored for every node: batched logits with the
    // store must equal full-inference logits.
    let store = FeatureStore::new(data.n_nodes(), model.n_layers() - 1);
    let all: Vec<usize> = (0..data.n_nodes()).collect();
    for level in 1..model.n_layers() {
        store.put_rows(level, &all, &hs[level - 1]).unwrap();
    }
    let mut bengine = BatchedEngine::new(
        &model,
        &data.adj,
        &data.features,
        vec![],
        Some(&store),
        StorePolicy::None,
        0,
    );
    let targets: Vec<usize> = data.test.iter().take(30).copied().collect();
    let res = bengine.infer(&targets);
    let full = &hs[model.n_layers() - 1];
    for (i, &t) in res.targets.iter().enumerate() {
        for c in 0..data.n_classes() {
            assert!((res.logits.get(i, c) - full.get(t, c)).abs() < 1e-3);
        }
    }
    // And it must have been cheaper than the plain path.
    assert_eq!(res.n_supporting, 0);
}

#[test]
fn pruned_batched_model_serves_with_store() {
    let data = small_dataset(7);
    let model = trained_model(&data, 8);
    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);
    let cfg = PrunerConfig {
        beta_epochs: 10,
        w_epochs: 10,
        batch_size: 128,
        ..Default::default()
    };
    let (pruned, _) = prune_model(&model, &tadj, &tx, 0.5, Scheme::BatchedInference, &cfg);

    let store = FeatureStore::new(data.n_nodes(), pruned.n_layers() - 1);
    let mut engine = BatchedEngine::new(
        &pruned,
        &data.adj,
        &data.features,
        vec![None, Some(8)],
        Some(&store),
        StorePolicy::Roots,
        0,
    );
    // Serve twice: the second pass must hit the store and be cheaper.
    let targets: Vec<usize> = data.test.iter().take(64).copied().collect();
    let first = engine.infer(&targets);
    let second = engine.infer(&targets);
    assert!(second.store_hits > 0);
    assert!(
        second.macs < first.macs,
        "{} vs {}",
        second.macs,
        first.macs
    );
    // Logits stay finite and classify above chance.
    let f1 = Metrics::f1_micro(&second.logits, &data.labels, &second.targets);
    assert!(f1 > 0.5, "pruned+store F1 {f1}");
}

#[test]
fn lasso_beats_random_end_to_end() {
    let data = small_dataset(9);
    let model = trained_model(&data, 10);
    let adj = data.adj.normalized(Normalization::Row);
    let (tadj, tnodes) = data.train_adj();
    let tadj = tadj.normalized(Normalization::Row);
    let tx = data.features.gather_rows(&tnodes);

    // Without retraining, at an aggressive budget, LASSO reconstruction
    // should lose less accuracy than random channel selection (Fig. 4).
    // Random is averaged over several draws — one lucky subset must not
    // flip the comparison.
    let eval = |method: PruneMethod, seed: u64| {
        let cfg = PrunerConfig {
            method,
            beta_epochs: 20,
            w_epochs: 20,
            batch_size: 128,
            seed,
            ..Default::default()
        };
        let (pruned, _) = prune_model(&model, &tadj, &tx, 0.25, Scheme::FullInference, &cfg);
        Trainer::evaluate(
            &pruned,
            Some(&adj),
            &data.features,
            &data.labels,
            &data.test,
        )
    };
    let lasso = eval(PruneMethod::Lasso, 0);
    let random_seeds = [0u64, 1, 2];
    let random = random_seeds
        .iter()
        .map(|&s| eval(PruneMethod::Random, s))
        .sum::<f64>()
        / random_seeds.len() as f64;
    assert!(
        lasso >= random - 0.02,
        "LASSO ({lasso}) must not lose to mean Random ({random}) by more than noise"
    );
}

#[test]
fn cost_model_tracks_measured_macs() {
    // The analytic batched cost (Eq. 3) and the engine's measured MACs
    // should agree within a small factor (the analytic model uses average
    // degree, the engine sees actual neighborhoods).
    let data = small_dataset(11);
    let model = trained_model(&data, 12);
    let cm = CostModel::new(data.n_nodes(), data.adj.avg_degree());
    let analytic = cm.batched_macs_per_node(&model, None);
    let mut engine = BatchedEngine::new(
        &model,
        &data.adj,
        &data.features,
        vec![],
        None,
        StorePolicy::None,
        0,
    );
    let targets: Vec<usize> = data.test.iter().take(100).copied().collect();
    let res = engine.infer(&targets);
    let measured = res.macs as f64 / targets.len() as f64;
    let ratio = measured / analytic;
    assert!(
        (0.2..5.0).contains(&ratio),
        "analytic {analytic} vs measured {measured} (ratio {ratio})"
    );
}

#[test]
fn spam_stream_serving_pipeline() {
    // A miniature Figure-6 run: stream windows through a batched engine.
    let base = SynthConfig {
        nodes: 300,
        classes: 2,
        communities: 4,
        attr_dim: 24,
        noise: 0.5,
        timestamp_days: 3,
        ..Default::default()
    }
    .generate(13);
    let model = trained_model(&base, 14);
    let big = gcnp_datasets::oversample(&base, 2, 15);
    let store = FeatureStore::new(big.n_nodes(), model.n_layers() - 1);
    let mut engine = BatchedEngine::new(
        &model,
        &big.adj,
        &big.features,
        vec![None, Some(16)],
        Some(&store),
        StorePolicy::Roots,
        0,
    );
    let mut served = 0usize;
    for window in SpamStream::new(&big, 120) {
        if window.nodes.is_empty() {
            continue;
        }
        let res = engine.infer(&window.nodes);
        assert_eq!(res.logits.rows(), res.targets.len());
        served += res.targets.len();
    }
    assert_eq!(
        served,
        big.n_nodes(),
        "every review gets served exactly once"
    );
    assert!(store.len(1) > 0, "roots accumulated in the store");
}
