//! Self-healing serving: the supervision layer (watchdog + hedged
//! re-execution), corruption quarantine recovery, the second-generation
//! fault kinds, and the EWMA cold-start seed. See DESIGN.md "Supervision &
//! self-healing".
//!
//! The deterministic *detection-latency* bound (a wedged batch is stolen
//! within the watchdog bound, on a fake clock) is unit-tested in
//! `crates/infer/src/supervisor.rs`; the tests here drive the same state
//! machine end to end through `serve_multi` under injected faults and
//! assert the recovery is lossless.

use gcnp::prelude::*;
use gcnp_tensor::init::seeded_rng;

fn chord_graph(n: usize) -> CsrMatrix {
    let mut e = Vec::new();
    for i in 0..n as u32 {
        for hop in [1u32, 7] {
            let j = (i + hop) % n as u32;
            e.push((i, j));
            e.push((j, i));
        }
    }
    CsrMatrix::adjacency(n, &e)
}

fn setup(n: usize, dim: usize, hidden: usize) -> (CsrMatrix, Matrix, GnnModel) {
    let adj = chord_graph(n);
    let x = Matrix::rand_uniform(n, dim, -1.0, 1.0, &mut seeded_rng(11));
    let model = zoo::graphsage(dim, hidden, 4, 13);
    (adj, x, model)
}

fn fleet<'a>(
    n_workers: usize,
    model: &'a GnnModel,
    adj: &'a CsrMatrix,
    x: &'a Matrix,
    store: Option<&'a FeatureStore>,
    inj: Option<&std::sync::Arc<FaultInjector>>,
) -> Vec<BatchedEngine<'a>> {
    (0..n_workers)
        .map(|w| {
            let policy = if store.is_some() {
                StorePolicy::Roots
            } else {
                StorePolicy::None
            };
            let mut e = BatchedEngine::new(model, adj, x, vec![], store, policy, w as u64);
            if let Some(inj) = inj {
                e.set_faults(std::sync::Arc::clone(inj));
            }
            e
        })
        .collect()
}

/// Tentpole acceptance: a stage wedged by a deterministic `StageStall` far
/// past the watchdog bound is detected, its batch stolen and requeued, and
/// (in pipelined mode) the stage pair torn down and respawned — the run
/// stays lossless and the stolen batch is eventually served.
#[test]
fn watchdog_recovers_a_wedged_stage() {
    let (adj, x, model) = setup(120, 8, 16);
    let pool: Vec<usize> = (0..120).collect();
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 32,
            n_requests: 240,
            seed: 19,
            pipeline: mode,
            watchdog: Some(0.1),
            ..Default::default()
        };
        // The very first attempt goes silent for 600 ms — six watchdog
        // bounds, so detection is guaranteed (the scan cadence is a quarter
        // of the bound) while normal sub-millisecond batches stay far
        // inside it.
        let plan = FaultPlan {
            stalls: 1,
            stall_ms: 600.0,
            horizon: 1,
            seed: 23,
            ..Default::default()
        };
        let inj = plan.build().unwrap();
        let mut engines = fleet(2, &model, &adj, &x, None, Some(&inj));
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        assert_eq!(inj.fired_gen2(), (1, 0, 0, 0), "{mode:?}: the stall fired");
        assert!(
            rep.watchdog_restarts >= 1,
            "{mode:?}: the watchdog must steal the wedged batch (restarts {})",
            rep.watchdog_restarts
        );
        assert_eq!(
            rep.served + rep.shed,
            240,
            "{mode:?}: recovery loses nothing"
        );
        assert_eq!(rep.shed, 0, "{mode:?}: the stolen batch is re-served");
        assert!(
            rep.retries >= 1,
            "{mode:?}: the steal requeues through the retry path"
        );
        assert_eq!(rep.failures, 0, "{mode:?}: a steal is not a failure");
    }
}

/// Hedged re-execution: straggler batches trigger speculative duplicates;
/// first completion wins the claim token, the loser is discarded, and the
/// fired/won/wasted ledger stays exactly consistent — with zero lost or
/// double-counted requests in either executor.
#[test]
fn hedged_stragglers_keep_accounting_consistent() {
    let (adj, x, model) = setup(200, 8, 16);
    let pool: Vec<usize> = (0..200).collect();
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let cfg = ServingConfig {
            arrival_rate: 1e6,
            max_batch: 32,
            n_requests: 320,
            seed: 29,
            pipeline: mode,
            hedge: Some(2.0),
            ..Default::default()
        };
        let plan = FaultPlan {
            stragglers: 4,
            straggle_multiplier: 50.0,
            horizon: 8,
            seed: 31,
            ..Default::default()
        };
        let inj = plan.build().unwrap();
        let mut engines = fleet(4, &model, &adj, &x, None, Some(&inj));
        let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
        assert_eq!(inj.fired().1, 4, "{mode:?}: all stragglers fired");
        assert!(
            rep.hedges_fired >= 1,
            "{mode:?}: 50x stragglers under k=2 must hedge"
        );
        assert_eq!(
            rep.hedges_fired,
            rep.hedges_won + rep.hedges_wasted,
            "{mode:?}: every hedge settles exactly once"
        );
        assert_eq!(
            rep.served + rep.shed,
            320,
            "{mode:?}: duplicates never double-serve"
        );
        assert_eq!(rep.shed, 0, "{mode:?}");
    }
}

/// Corruption quarantine acceptance: a deterministic bit flip in a resident
/// store row is caught by the per-row checksum, the attempt fails with the
/// typed-retryable `MissingStoredRow`, and the retry re-gathers the evicted
/// row from level 0 — producing logits bitwise identical to the fault-free
/// run.
#[test]
fn row_flip_retry_serves_bitwise_identical_logits() {
    // A 2-layer model keeps the store single-level, so every resident row
    // is staged on a repeat batch and the injected flip is always read
    // (with the 3-layer reference model, a flip in the shadowed level-1
    // rows would sit dormant behind the level-2 reads).
    let adj = chord_graph(120);
    let x = Matrix::rand_uniform(120, 8, -1.0, 1.0, &mut seeded_rng(11));
    let model = zoo::tinygnn_student(8, 16, 4, 13);
    let targets: Vec<usize> = (0..48).collect();

    // Warm a store with the batch's own roots, then serve the same batch
    // again so every staged read hits store-resident rows.
    let run = |inject: bool| -> (Vec<f32>, usize) {
        let store = FeatureStore::new(120, model.n_layers() - 1);
        let mut e = BatchedEngine::new(
            &model,
            &adj,
            &x,
            vec![],
            Some(&store),
            StorePolicy::Roots,
            5,
        );
        e.try_infer(&targets).unwrap(); // warm: all 48 roots now resident
        if inject {
            let plan = FaultPlan {
                row_flips: 1,
                horizon: 1,
                seed: 3,
                ..Default::default()
            };
            e.set_faults(plan.build().unwrap());
            // The flipped row is one of the staged roots, so the checksum
            // fails this attempt with the typed-retryable error (and the
            // row is quarantined out of the store).
            let res = e.try_infer(&targets);
            assert!(
                matches!(res, Err(ServingError::MissingStoredRow { .. })),
                "corrupted read must surface as MissingStoredRow"
            );
        }
        let res = e.try_infer(&targets).unwrap();
        (res.logits.as_slice().to_vec(), res.store_hits)
    };

    let (clean, clean_hits) = run(false);
    let (healed, healed_hits) = run(true);
    assert!(clean_hits > 0, "the clean re-serve must hit the store");
    assert_eq!(
        healed_hits,
        clean_hits - 1,
        "exactly the quarantined row is re-gathered from level 0"
    );
    assert_eq!(
        clean, healed,
        "re-gathered data serves bitwise-identical logits"
    );
}

/// All seven fault kinds — panic, straggle, store-miss, stage-stall,
/// row-flip, clock-skew, queue-wedge — injected into one schedule, run
/// under both executors, with and without the supervisor: zero requests
/// lost or duplicated, every fault fires, and the hedge ledger balances.
#[test]
fn all_seven_fault_kinds_are_lossless_in_both_modes() {
    let (adj, x, model) = setup(300, 8, 16);
    let pool: Vec<usize> = (0..300).collect();
    let plan = FaultPlan {
        panics: 2,
        stragglers: 2,
        straggle_multiplier: 1.5,
        storms: 1,
        stalls: 1,
        stall_ms: 40.0,
        row_flips: 1,
        skews: 1,
        skew: 3.0,
        wedges: 1,
        horizon: 12, // 480 requests / 32 per batch = 15 attempts minimum
        seed: 41,
    };
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        for supervised in [false, true] {
            let cfg = ServingConfig {
                arrival_rate: 1e6,
                max_batch: 32,
                n_requests: 480,
                seed: 37,
                pipeline: mode,
                // Supervised pass: watchdog far above the 40 ms stall and a
                // high hedge multiplier — the supervisor thread runs but
                // recovery still comes from the retry path, and whatever
                // hedges the cold-start window fires must settle.
                watchdog: supervised.then_some(0.5),
                hedge: supervised.then_some(8.0),
                ..Default::default()
            };
            let store = FeatureStore::new(300, model.n_layers() - 1);
            let inj = plan.build().unwrap();
            let mut engines = fleet(4, &model, &adj, &x, Some(&store), Some(&inj));
            let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
            let tag = format!("{mode:?} supervised={supervised}");
            assert_eq!(inj.fired(), (2, 2, 1), "{tag}: gen-1 schedule fired");
            assert_eq!(
                inj.fired_gen2(),
                (1, 1, 1, 1),
                "{tag}: gen-2 schedule fired"
            );
            assert_eq!(
                rep.served + rep.shed,
                480,
                "{tag}: nothing lost, nothing duplicated"
            );
            assert_eq!(rep.shed, 0, "{tag}: the retry cap covers every fault");
            assert_eq!(rep.recoveries, 2, "{tag}: both panics recovered");
            assert_eq!(rep.workers_lost, 2, "{tag}");
            assert!(rep.retries >= 2, "{tag}: panicked batches retried");
            assert_eq!(
                rep.hedges_fired,
                rep.hedges_won + rep.hedges_wasted,
                "{tag}: hedge ledger balances"
            );
            if !supervised {
                assert_eq!(rep.watchdog_restarts, 0, "{tag}: supervisor off");
                assert_eq!(rep.hedges_fired, 0, "{tag}: supervisor off");
            }
        }
    }
}

/// Satellite acceptance (EWMA cold start): the dispatcher's virtual clock
/// seeds from the cost model instead of zero, so it is strictly positive,
/// grows with batch size, stays optimistic (a cold fleet admits rather than
/// sheds), and the first batch of a deadline run is never spuriously shed.
#[test]
fn cold_start_estimate_seeds_the_virtual_clock() {
    let (adj, x, model) = setup(100, 6, 8);
    let engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let est1 = engine.cold_compute_estimate(1);
    let est64 = engine.cold_compute_estimate(64);
    assert!(est1 > 0.0 && est1.is_finite(), "seed estimate {est1}");
    assert!(est64 > est1, "estimate grows with batch size");
    assert!(
        est64 < 0.01,
        "cold seed stays optimistic so a cold fleet admits ({est64}s for 64 targets)"
    );

    // Single-engine simulation with a generous deadline: the cold estimate
    // must not project a first-batch miss.
    let pool: Vec<usize> = (0..100).collect();
    let cfg = ServingConfig {
        arrival_rate: 1e6,
        max_batch: 32,
        n_requests: 96,
        seed: 7,
        deadline: Some(1.0),
        ..Default::default()
    };
    let mut engine = BatchedEngine::new(&model, &adj, &x, vec![], None, StorePolicy::None, 0);
    let rep = simulate(&mut engine, &pool, &cfg).unwrap();
    assert_eq!(rep.shed_deadline, 0, "no spurious cold-start shedding");
    assert_eq!(rep.served, 96);

    // Multi-worker fleets seed the shared EWMA the same way.
    for mode in [PipelineMode::Sequential, PipelineMode::Pipelined] {
        let mcfg = ServingConfig {
            pipeline: mode,
            ..cfg
        };
        let mut engines = fleet(2, &model, &adj, &x, None, None);
        let rep = serve_multi(&mut engines, &pool, &mcfg).unwrap();
        assert_eq!(rep.served, 96, "{mode:?}: cold fleet admits its trace");
        assert_eq!(rep.shed, 0, "{mode:?}");
    }
}

// --- gen-2 fault matrix -------------------------------------------------
//
// One small lossless run per (fault kind, executor) cell; the CI chaos job
// selects these by the `gen2_` prefix.

fn gen2_case(
    mode: PipelineMode,
    mutate: impl Fn(&mut FaultPlan),
    expect_gen2: (usize, usize, usize, usize),
) {
    let (adj, x, model) = setup(120, 8, 16);
    let store = FeatureStore::new(120, model.n_layers() - 1);
    let pool: Vec<usize> = (0..120).collect();
    let cfg = ServingConfig {
        arrival_rate: 1e6,
        max_batch: 32,
        n_requests: 160, // 5 batch attempts minimum, horizon is 4
        seed: 43,
        pipeline: mode,
        ..Default::default()
    };
    let mut plan = FaultPlan {
        horizon: 4,
        seed: 47,
        ..Default::default()
    };
    mutate(&mut plan);
    let inj = plan.build().unwrap();
    let mut engines = fleet(2, &model, &adj, &x, Some(&store), Some(&inj));
    let rep = serve_multi(&mut engines, &pool, &cfg).unwrap();
    assert_eq!(rep.served + rep.shed, 160, "{mode:?}: lossless");
    assert_eq!(rep.shed, 0, "{mode:?}");
    assert_eq!(inj.fired_gen2(), expect_gen2, "{mode:?}: schedule fired");
}

#[test]
fn gen2_stall_sequential() {
    gen2_case(
        PipelineMode::Sequential,
        |p| {
            p.stalls = 1;
            p.stall_ms = 30.0;
        },
        (1, 0, 0, 0),
    );
}

#[test]
fn gen2_stall_pipelined() {
    gen2_case(
        PipelineMode::Pipelined,
        |p| {
            p.stalls = 1;
            p.stall_ms = 30.0;
        },
        (1, 0, 0, 0),
    );
}

#[test]
fn gen2_rowflip_sequential() {
    gen2_case(PipelineMode::Sequential, |p| p.row_flips = 1, (0, 1, 0, 0));
}

#[test]
fn gen2_rowflip_pipelined() {
    gen2_case(PipelineMode::Pipelined, |p| p.row_flips = 1, (0, 1, 0, 0));
}

#[test]
fn gen2_skew_sequential() {
    gen2_case(
        PipelineMode::Sequential,
        |p| {
            p.skews = 1;
            p.skew = 3.0;
        },
        (0, 0, 1, 0),
    );
}

#[test]
fn gen2_skew_pipelined() {
    gen2_case(
        PipelineMode::Pipelined,
        |p| {
            p.skews = 1;
            p.skew = 3.0;
        },
        (0, 0, 1, 0),
    );
}

#[test]
fn gen2_wedge_sequential() {
    gen2_case(PipelineMode::Sequential, |p| p.wedges = 1, (0, 0, 0, 1));
}

#[test]
fn gen2_wedge_pipelined() {
    gen2_case(PipelineMode::Pipelined, |p| p.wedges = 1, (0, 0, 0, 1));
}
