//! Property-based tests of the inference engines and graph substrate.

use gcnp::prelude::*;
use proptest::prelude::*;

/// Arbitrary small undirected graph + features.
fn arb_graph() -> impl Strategy<Value = (CsrMatrix, Matrix)> {
    (5usize..40, 0u64..500).prop_flat_map(|(n, seed)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..n * 4).prop_map(move |pairs| {
            let mut edges = Vec::with_capacity(pairs.len() * 2);
            for (a, b) in pairs {
                if a != b {
                    edges.push((a, b));
                    edges.push((b, a));
                }
            }
            let adj = CsrMatrix::adjacency(n, &edges);
            let mut rng = gcnp_tensor::init::seeded_rng(seed);
            let x = Matrix::rand_uniform(n, 8, -1.0, 1.0, &mut rng);
            (adj, x)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR invariants hold for arbitrary edge lists.
    #[test]
    fn csr_invariants((adj, _) in arb_graph()) {
        let n = adj.n_rows();
        prop_assert_eq!(adj.indptr().len(), n + 1);
        prop_assert!(adj.indptr().windows(2).all(|w| w[0] <= w[1]));
        for r in 0..n {
            let row = adj.row_indices(r);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row sorted, no dups");
            prop_assert!(row.iter().all(|&c| (c as usize) < n));
        }
        // transpose twice is identity
        prop_assert_eq!(adj.transpose().transpose(), adj);
    }

    /// Row normalization yields stochastic rows (or zero rows).
    #[test]
    fn row_normalization_stochastic((adj, _) in arb_graph()) {
        let norm = adj.normalized(Normalization::Row);
        for r in 0..norm.n_rows() {
            let s: f32 = norm.row_values(r).iter().sum();
            if norm.degree(r) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-4);
            } else {
                prop_assert_eq!(s, 0.0);
            }
        }
    }

    /// SpMM distributes over feature concatenation.
    #[test]
    fn spmm_distributes_over_concat((adj, x) in arb_graph()) {
        let norm = adj.normalized(Normalization::Row);
        let parts = x.split_cols(&[3, 5]);
        let lhs = norm.spmm(&x);
        let rhs = norm.spmm(&parts[0]).concat_cols(&norm.spmm(&parts[1]));
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    /// Batched inference without caps equals full inference for any graph,
    /// any target set.
    #[test]
    fn batched_equals_full((adj, x) in arb_graph(), seed in 0u64..100) {
        let model = zoo::graphsage(8, 8, 3, seed);
        let norm = adj.normalized(Normalization::Row);
        let full = model.forward_full(Some(&norm), &x);
        let mut engine = BatchedEngine::new(
            &model, &adj, &x, vec![], None, StorePolicy::None, seed,
        );
        let targets: Vec<usize> = (0..adj.n_rows()).step_by(3).collect();
        let res = engine.infer(&targets);
        for (i, &t) in res.targets.iter().enumerate() {
            for c in 0..3 {
                prop_assert!(
                    (res.logits.get(i, c) - full.get(t, c)).abs() < 1e-3,
                    "node {} class {}", t, c
                );
            }
        }
    }

    /// The store never changes results when it holds exact features.
    #[test]
    fn exact_store_is_transparent((adj, x) in arb_graph(), seed in 0u64..100) {
        let model = zoo::graphsage(8, 8, 3, seed);
        let norm = adj.normalized(Normalization::Row);
        let hs = model.forward_collect(Some(&norm), &x);
        let store = FeatureStore::new(adj.n_rows(), model.n_layers() - 1);
        let all: Vec<usize> = (0..adj.n_rows()).collect();
        for level in 1..model.n_layers() {
            store.put_rows(level, &all, &hs[level - 1]).unwrap();
        }
        let mut engine = BatchedEngine::new(
            &model, &adj, &x, vec![], Some(&store), StorePolicy::None, seed,
        );
        let targets: Vec<usize> = (0..adj.n_rows().min(10)).collect();
        let res = engine.infer(&targets);
        let full = &hs[model.n_layers() - 1];
        for (i, &t) in res.targets.iter().enumerate() {
            for c in 0..3 {
                prop_assert!((res.logits.get(i, c) - full.get(t, c)).abs() < 1e-3);
            }
        }
    }

    /// F1-micro is always within [0, 1] and equals accuracy for single-label.
    #[test]
    fn f1_bounds(labels in proptest::collection::vec(0usize..4, 10..50), seed in 0u64..100) {
        let n = labels.len();
        let mut rng = gcnp_tensor::init::seeded_rng(seed);
        let logits = Matrix::rand_uniform(n, 4, -1.0, 1.0, &mut rng);
        let lab = Labels::Single(labels, 4);
        let idx: Vec<usize> = (0..n).collect();
        let f1 = Metrics::f1_micro(&logits, &lab, &idx);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert_eq!(f1, Metrics::accuracy(&logits, &lab, &idx));
    }
}
