//! # gcnp — facade crate
//!
//! Re-exports the whole GCNP workspace behind one dependency, mirroring the
//! paper's system: *Accelerating Large Scale Real-Time GNN Inference using
//! Channel Pruning* (Zhou et al., VLDB 2021).
//!
//! The full pipeline — train, prune, retrain, serve — in one example:
//!
//! ```no_run
//! use gcnp::prelude::*;
//!
//! // A benchmark graph (synthetic stand-in for Reddit; see DESIGN.md §1).
//! let data = DatasetKind::RedditSim.generate(42);
//!
//! // Train the reference 2-layer GraphSAGE with GraphSAINT sampling.
//! let mut model = zoo::graphsage(data.attr_dim(), 128, data.n_classes(), 0);
//! Trainer::train_saint(&mut model, &data, &TrainConfig::default());
//!
//! // LASSO channel pruning at 4x (keep 1/4 of the channels), then retrain.
//! let (tadj, tnodes) = data.train_adj();
//! let tadj = tadj.normalized(Normalization::Row);
//! let tx = data.features.gather_rows(&tnodes);
//! let (mut pruned, _report) = prune_model(
//!     &model, &tadj, &tx, 0.25, Scheme::BatchedInference, &PrunerConfig::default());
//! Trainer::train_saint(&mut pruned, &data, &TrainConfig::default());
//!
//! // Real-time serving with the hidden-feature store and hop-2 cap of 32.
//! let store = FeatureStore::new(data.n_nodes(), pruned.n_layers() - 1);
//! let mut engine = BatchedEngine::new(
//!     &pruned, &data.adj, &data.features,
//!     vec![None, Some(32)], Some(&store), StorePolicy::Roots, 0);
//! let result = engine.infer(&data.test[..512]);
//! println!("F1 {:.3} in {:.1} ms",
//!     Metrics::f1_micro(&result.logits, &data.labels, &result.targets),
//!     result.seconds * 1e3);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the binaries regenerating every table and figure of
//! the paper.

pub use gcnp_autograd as autograd;
pub use gcnp_core as prune;
pub use gcnp_datasets as datasets;
pub use gcnp_infer as infer;
pub use gcnp_models as models;
pub use gcnp_sparse as sparse;
pub use gcnp_tensor as tensor;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use gcnp_autograd::{Adam, SharedAdj, Tape, Var};
    pub use gcnp_core::{
        lasso_prune, prune_model, prune_single_layer, LassoOutcome, PruneMethod, PruneReport,
        PrunerConfig, Scheme,
    };
    pub use gcnp_datasets::{Dataset, DatasetKind, GrowingGraph, Labels, Partition, SpamStream};
    pub use gcnp_infer::{
        run_batches, serve_multi, serve_sharded, simulate, simulate_tiered, AccretionReport,
        BatchResult, BatchedEngine, CostModel, Fault, FaultInjector, FaultPlan, FeatureStore,
        FullEngine, LadderPolicy, MultiServingReport, PipelineMode, QuantizedGnn, ServingConfig,
        ServingError, ServingReport, ServingResult, ShardedStore, StorePolicy,
    };
    pub use gcnp_models::{
        zoo, Activation, Branch, BranchLayer, CombineMode, GnnModel, Metrics, TrainConfig, Trainer,
    };
    pub use gcnp_sparse::{CsrMatrix, Normalization};
    pub use gcnp_tensor::Matrix;
}
